package graph

import (
	"fmt"
	"math"

	"github.com/acq-search/acq/internal/para"
)

// Frozen is the immutable CSR (compressed sparse row) form of an attributed
// graph: adjacency lives in one flat edge array indexed by per-vertex
// offsets, and keyword sets use the same two-array layout. Compared with the
// mutable slice-of-slices Graph, a Frozen
//
//   - costs O(1) allocations for the whole adjacency/keyword payload instead
//     of two per vertex, so publishing a serving snapshot stops scaling the
//     garbage collector's mark work with |V|;
//   - scans neighbourhoods and keyword sets over sequential memory, which is
//     what the hot query loops (peeling, BFS, keyword merges) spend their
//     time doing.
//
// A Frozen is safe for unlimited concurrent readers: nothing it references is
// ever mutated after Freeze returns. It intentionally has no mutators —
// updates are applied to the mutable master and republished by freezing
// again.
type Frozen struct {
	adjOff []int32 // len NumVertices+1; adjacency of v is adj[adjOff[v]:adjOff[v+1]]
	adj    []VertexID
	kwOff  []int32 // len NumVertices+1; keywords of v are kw[kwOff[v]:kwOff[v+1]]
	kw     []KeywordID
	dict   *Dict
	labels []string
	byName map[string]VertexID
	m      int
}

// Freeze builds the CSR form of g, fanning the payload copy out over workers
// goroutines (≤ 0 means one per CPU, 1 runs inline). The result is identical
// for any worker count.
//
// The label table and the label→vertex index are shared with g (no Graph
// mutator touches them after construction); the keyword dictionary is copied,
// because mutators intern new words. Freeze is the snapshot-publication
// primitive: the frozen copy costs O(n+m) sequential copying but only a
// handful of allocations, where the old deep clone allocated two slices per
// vertex.
func (g *Graph) Freeze(workers int) *Frozen { return g.FreezeReuse(workers, nil) }

// FreezeReuse is Freeze with one extra fast path: when prev is a frozen copy
// of this graph whose dictionary has not grown since (the dictionary is
// append-only, so equal sizes imply equal contents), prev's dictionary copy
// is shared instead of cloned again. Republication under edge churn — the
// serving steady state, where no new keyword is ever interned — then
// allocates nothing proportional to the vocabulary either.
func (g *Graph) FreezeReuse(workers int, prev *Frozen) *Frozen {
	n := len(g.adj)
	dict := (*Dict)(nil)
	if prev != nil && prev.dict.Size() == g.dict.Size() {
		dict = prev.dict
	} else {
		dict = g.dict.Clone()
	}
	f := &Frozen{
		adjOff: make([]int32, n+1),
		kwOff:  make([]int32, n+1),
		dict:   dict,
		labels: g.labels,
		byName: g.byName,
		m:      g.m,
	}
	adjTotal, kwTotal := 0, 0
	for v := 0; v < n; v++ {
		adjTotal += len(g.adj[v])
		kwTotal += len(g.kw[v])
		f.adjOff[v+1] = int32(adjTotal)
		f.kwOff[v+1] = int32(kwTotal)
	}
	if adjTotal > math.MaxInt32 || kwTotal > math.MaxInt32 {
		// 2^31 adjacency entries is an 8 GiB edge array; the int32 offsets
		// that keep the index compact cannot address past it.
		panic("graph: Freeze: graph exceeds int32 CSR offsets")
	}
	f.adj = make([]VertexID, adjTotal)
	f.kw = make([]KeywordID, kwTotal)
	para.ForEachChunk(workers, n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			copy(f.adj[f.adjOff[v]:f.adjOff[v+1]], g.adj[v])
			copy(f.kw[f.kwOff[v]:f.kwOff[v+1]], g.kw[v])
		}
	})
	return f
}

// NumVertices returns |V|.
func (f *Frozen) NumVertices() int { return len(f.adjOff) - 1 }

// NumEdges returns |E| (each undirected edge counted once).
func (f *Frozen) NumEdges() int { return f.m }

// Degree returns the degree of v.
func (f *Frozen) Degree(v VertexID) int { return int(f.adjOff[v+1] - f.adjOff[v]) }

// Neighbors returns the sorted adjacency list of v: a subslice of the shared
// edge array, owned by the view.
func (f *Frozen) Neighbors(v VertexID) []VertexID { return f.adj[f.adjOff[v]:f.adjOff[v+1]] }

// Keywords returns the sorted keyword set W(v): a subslice of the shared
// keyword array, owned by the view.
func (f *Frozen) Keywords(v VertexID) []KeywordID { return f.kw[f.kwOff[v]:f.kwOff[v+1]] }

// Dict returns the keyword dictionary.
func (f *Frozen) Dict() *Dict { return f.dict }

// Label returns the human-readable name of v ("" if none was assigned).
func (f *Frozen) Label(v VertexID) string {
	if int(v) < len(f.labels) {
		return f.labels[v]
	}
	return ""
}

// VertexByLabel resolves a vertex by its label.
func (f *Frozen) VertexByLabel(name string) (VertexID, bool) {
	v, ok := f.byName[name]
	return v, ok
}

// KeywordStrings materialises W(v) as strings, in dictionary order.
func (f *Frozen) KeywordStrings(v VertexID) []string {
	kws := f.Keywords(v)
	out := make([]string, len(kws))
	for i, id := range kws {
		out[i] = f.dict.Word(id)
	}
	return out
}

// HasEdge reports whether {u, v} is an edge.
func (f *Frozen) HasEdge(u, v VertexID) bool {
	if u == v {
		return false
	}
	a, b := u, v
	if f.Degree(a) > f.Degree(b) {
		a, b = b, a
	}
	return containsVertex(f.Neighbors(a), b)
}

// HasKeyword reports whether w ∈ W(v).
func (f *Frozen) HasKeyword(v VertexID, w KeywordID) bool {
	return containsKeyword(f.Keywords(v), w)
}

// HasAllKeywords reports whether set ⊆ W(v). set must be sorted.
func (f *Frozen) HasAllKeywords(v VertexID, set []KeywordID) bool {
	return hasAllSorted(f.Keywords(v), set)
}

// CountSharedKeywords returns |W(v) ∩ set|. set must be sorted.
func (f *Frozen) CountSharedKeywords(v VertexID, set []KeywordID) int {
	return countSharedSorted(f.Keywords(v), set)
}

// AvgKeywords returns the average keyword-set size l̂ over all vertices.
func (f *Frozen) AvgKeywords() float64 {
	n := f.NumVertices()
	if n == 0 {
		return 0
	}
	return float64(len(f.kw)) / float64(n)
}

// AvgDegree returns the average vertex degree d̂ = 2m/n.
func (f *Frozen) AvgDegree() float64 {
	n := f.NumVertices()
	if n == 0 {
		return 0
	}
	return 2 * float64(f.m) / float64(n)
}

// SizeBytes returns the resident size of the four CSR arrays — the payload a
// published snapshot pins in memory for its lifetime. Labels, the label
// index and the dictionary are excluded (they are shared or proportional to
// the vocabulary, not to n+m).
func (f *Frozen) SizeBytes() int {
	return 4 * (len(f.adjOff) + len(f.kwOff) + len(f.adj) + len(f.kw))
}

// Flat exposes the raw CSR arrays for zero-copy serialization (internal/
// dataio writes them to the binary snapshot format directly). The returned
// slices are the frozen view's own storage: read-only.
func (f *Frozen) Flat() (adjOff []int32, adj []VertexID, kwOff []int32, kw []KeywordID) {
	return f.adjOff, f.adj, f.kwOff, f.kw
}

// Validate checks the CSR structural invariants (monotone offsets, sorted
// duplicate-free adjacency with symmetric edges and no self-loops, sorted
// in-range keyword lists, edge count consistent). Intended for tests and
// freshly deserialised data.
func (f *Frozen) Validate() error {
	n := f.NumVertices()
	if len(f.kwOff) != n+1 {
		return fmt.Errorf("graph: frozen offset arrays disagree: %d vs %d vertices", len(f.adjOff)-1, len(f.kwOff)-1)
	}
	if err := validateOffsets("adjacency", f.adjOff, len(f.adj)); err != nil {
		return err
	}
	if err := validateOffsets("keyword", f.kwOff, len(f.kw)); err != nil {
		return err
	}
	// Symmetry is checked as a merge rather than a per-edge binary search:
	// with every adjacency list sorted, the reverse entries for v's upper
	// neighbors arrive at each u in increasing v, so a single cursor per
	// vertex pairs every edge with its reverse in O(n+m) total.
	cur := make([]int32, n)
	for v := 0; v < n; v++ {
		id := VertexID(v)
		ns := f.Neighbors(id)
		// Entries below v were each consumed by their smaller endpoint's
		// pass; one still pending means its reverse edge never showed up.
		if c := int(cur[v]); c < len(ns) && ns[c] < id {
			return fmt.Errorf("graph: edge %d->%d has no reverse edge", v, ns[c])
		}
		for i, u := range ns {
			if u == id {
				return fmt.Errorf("graph: self-loop at vertex %d", v)
			}
			if int(u) < 0 || int(u) >= n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, u)
			}
			if i > 0 && ns[i-1] >= u {
				return fmt.Errorf("graph: adjacency of vertex %d not strictly sorted", v)
			}
			if u > id {
				nu := f.Neighbors(u)
				if c := int(cur[u]); c >= len(nu) || nu[c] != id {
					return fmt.Errorf("graph: edge %d->%d has no reverse edge", v, u)
				}
				cur[u]++
			}
		}
		ws := f.Keywords(id)
		for i, w := range ws {
			if int(w) < 0 || int(w) >= f.dict.Size() {
				return fmt.Errorf("graph: vertex %d has out-of-range keyword %d", v, w)
			}
			if i > 0 && ws[i-1] >= w {
				return fmt.Errorf("graph: keywords of vertex %d not strictly sorted", v)
			}
		}
	}
	if len(f.adj) != 2*f.m {
		return fmt.Errorf("graph: edge count %d does not match adjacency total %d", f.m, len(f.adj))
	}
	return nil
}

func validateOffsets(what string, off []int32, total int) error {
	if len(off) == 0 || off[0] != 0 {
		return fmt.Errorf("graph: %s offsets must start at 0", what)
	}
	for i := 1; i < len(off); i++ {
		if off[i] < off[i-1] {
			return fmt.Errorf("graph: %s offsets not monotone at vertex %d", what, i-1)
		}
	}
	if int(off[len(off)-1]) != total {
		return fmt.Errorf("graph: %s offsets end at %d, payload has %d entries", what, off[len(off)-1], total)
	}
	return nil
}

// NewFrozenFromFlat assembles an immutable Frozen directly over flat CSR
// arrays — the zero-copy inverse of Flat, used when serving straight from a
// memory-mapped snapshot. The argument slices become the frozen view's own
// storage and MUST never be written again: for a mapping that means a private
// mapping nothing else mutates, for heap arrays it means ownership transfer.
// A fresh dictionary and the label→vertex index are built here (they are
// O(vocabulary) and O(n) — the n+m payload is what stays unmaterialised).
//
// validate runs the full representation Validate; callers loading an
// untrusted or possibly-corrupt file should pass true, callers re-wrapping
// arrays already validated in this process may skip it.
func NewFrozenFromFlat(labels, words []string, kwOff []int32, kw []KeywordID, adjOff []int32, adj []VertexID, validate bool) (*Frozen, error) {
	if len(adjOff) == 0 || len(adjOff) != len(kwOff) {
		return nil, fmt.Errorf("graph: NewFrozenFromFlat: offset arrays disagree (%d vs %d)", len(adjOff), len(kwOff))
	}
	n := len(adjOff) - 1
	if len(labels) > n {
		return nil, fmt.Errorf("graph: NewFrozenFromFlat: %d labels for %d vertices", len(labels), n)
	}
	if len(adj)%2 != 0 {
		return nil, fmt.Errorf("graph: NewFrozenFromFlat: odd adjacency total %d", len(adj))
	}
	dict := NewDict()
	for i, w := range words {
		if id := dict.Intern(w); int(id) != i {
			return nil, fmt.Errorf("graph: NewFrozenFromFlat: duplicate dictionary word %q", w)
		}
	}
	if len(labels) < n {
		labels = append(labels, make([]string, n-len(labels))...)
	}
	byName := make(map[string]VertexID, n)
	for v, label := range labels {
		if label == "" {
			continue
		}
		if _, dup := byName[label]; dup {
			return nil, fmt.Errorf("graph: NewFrozenFromFlat: duplicate vertex label %q", label)
		}
		byName[label] = VertexID(v)
	}
	f := &Frozen{
		adjOff: adjOff,
		adj:    adj,
		kwOff:  kwOff,
		kw:     kw,
		dict:   dict,
		labels: labels,
		byName: byName,
		m:      len(adj) / 2,
	}
	if validate {
		if err := f.Validate(); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// FromFlat assembles a mutable Graph from flat CSR arrays — the inverse of
// Freeze, used when loading a binary snapshot. It takes ownership of every
// argument slice. Labels and words may be shorter than implied (missing
// entries mean unlabelled / empty); duplicate non-empty labels and duplicate
// dictionary words are errors, as is any violation of the representation
// invariants (checked via Validate, so corrupt files fail loudly instead of
// corrupting queries later).
//
// The per-vertex adjacency and keyword slices alias the flat arrays with
// their capacity clipped to the row boundary, so the assembled graph still
// costs O(1) payload allocations; the first mutation of a row reallocates
// just that row.
func FromFlat(labels, words []string, kwOff []int32, kw []KeywordID, adjOff []int32, adj []VertexID) (*Graph, error) {
	if len(adjOff) == 0 || len(adjOff) != len(kwOff) {
		return nil, fmt.Errorf("graph: FromFlat: offset arrays disagree (%d vs %d)", len(adjOff), len(kwOff))
	}
	n := len(adjOff) - 1
	if len(labels) > n {
		return nil, fmt.Errorf("graph: FromFlat: %d labels for %d vertices", len(labels), n)
	}
	if err := validateOffsets("adjacency", adjOff, len(adj)); err != nil {
		return nil, err
	}
	if err := validateOffsets("keyword", kwOff, len(kw)); err != nil {
		return nil, err
	}
	dict := NewDict()
	for i, w := range words {
		if id := dict.Intern(w); int(id) != i {
			return nil, fmt.Errorf("graph: FromFlat: duplicate dictionary word %q", w)
		}
	}
	g := &Graph{
		adj:    make([][]VertexID, n),
		kw:     make([][]KeywordID, n),
		dict:   dict,
		labels: append(labels, make([]string, n-len(labels))...),
		byName: make(map[string]VertexID, n),
		m:      len(adj) / 2,
	}
	for v := 0; v < n; v++ {
		// Three-index slicing caps each row at its boundary, so a later
		// in-place append (InsertEdge, AddKeyword) can never overwrite the
		// next vertex's row: it reallocates instead.
		g.adj[v] = adj[adjOff[v]:adjOff[v+1]:adjOff[v+1]]
		g.kw[v] = kw[kwOff[v]:kwOff[v+1]:kwOff[v+1]]
	}
	for v, label := range g.labels {
		if label == "" {
			continue
		}
		if _, dup := g.byName[label]; dup {
			return nil, fmt.Errorf("graph: FromFlat: duplicate vertex label %q", label)
		}
		g.byName[label] = VertexID(v)
	}
	if len(adj)%2 != 0 {
		return nil, fmt.Errorf("graph: FromFlat: odd adjacency total %d", len(adj))
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
