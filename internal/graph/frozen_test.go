package graph

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// buildTestGraph assembles a messy little attributed graph exercising every
// View code path: labelled and unlabelled vertices, empty keyword sets, an
// isolated vertex.
func buildTestGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	b.AddVertex("a", "x", "y")
	b.AddVertex("b", "y")
	b.AddVertex("", "x", "z", "w")
	b.AddVertex("d")
	b.AddVertex("e", "w")
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// randomTestGraph builds a random graph directly (testutil depends on this
// package, so it cannot be imported here).
func randomTestGraph(rng *rand.Rand, n int) *Graph {
	b := NewBuilder()
	vocab := []string{"k0", "k1", "k2", "k3", "k4", "k5", "k6", "k7"}
	for v := 0; v < n; v++ {
		kws := make([]string, 0, 3)
		for i := 0; i < 3; i++ {
			if rng.Intn(2) == 0 {
				kws = append(kws, vocab[rng.Intn(len(vocab))])
			}
		}
		b.AddVertex(fmt.Sprintf("v%d", v), kws...)
	}
	m := int(2.5 * float64(n))
	for i := 0; i < m; i++ {
		b.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)))
	}
	return b.MustBuild()
}

// requireSameView fails unless a and b answer every View method identically.
func requireSameView(t *testing.T, label string, a, b View) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("%s: sizes differ: %d/%d vs %d/%d", label, a.NumVertices(), a.NumEdges(), b.NumVertices(), b.NumEdges())
	}
	if a.AvgDegree() != b.AvgDegree() || a.AvgKeywords() != b.AvgKeywords() {
		t.Fatalf("%s: averages differ", label)
	}
	if a.Dict().Size() != b.Dict().Size() {
		t.Fatalf("%s: dictionary sizes differ", label)
	}
	n := a.NumVertices()
	for v := 0; v < n; v++ {
		id := VertexID(v)
		if a.Degree(id) != b.Degree(id) {
			t.Fatalf("%s: degree of %d differs", label, v)
		}
		if !reflect.DeepEqual(append([]VertexID{}, a.Neighbors(id)...), append([]VertexID{}, b.Neighbors(id)...)) {
			t.Fatalf("%s: neighbors of %d differ: %v vs %v", label, v, a.Neighbors(id), b.Neighbors(id))
		}
		if !reflect.DeepEqual(append([]KeywordID{}, a.Keywords(id)...), append([]KeywordID{}, b.Keywords(id)...)) {
			t.Fatalf("%s: keywords of %d differ", label, v)
		}
		if a.Label(id) != b.Label(id) {
			t.Fatalf("%s: label of %d differs", label, v)
		}
		if !reflect.DeepEqual(a.KeywordStrings(id), b.KeywordStrings(id)) {
			t.Fatalf("%s: keyword strings of %d differ", label, v)
		}
		for u := 0; u < n; u++ {
			if a.HasEdge(id, VertexID(u)) != b.HasEdge(id, VertexID(u)) {
				t.Fatalf("%s: HasEdge(%d, %d) differs", label, v, u)
			}
		}
		set := a.Keywords(id)
		if a.HasAllKeywords(id, set) != b.HasAllKeywords(id, set) ||
			a.CountSharedKeywords(id, set) != b.CountSharedKeywords(id, set) {
			t.Fatalf("%s: keyword-set predicates differ at %d", label, v)
		}
		for w := 0; w < a.Dict().Size(); w++ {
			if a.HasKeyword(id, KeywordID(w)) != b.HasKeyword(id, KeywordID(w)) {
				t.Fatalf("%s: HasKeyword(%d, %d) differs", label, v, w)
			}
		}
	}
	for _, name := range []string{"a", "b", "d", "missing", ""} {
		av, aok := a.VertexByLabel(name)
		bv, bok := b.VertexByLabel(name)
		if av != bv || aok != bok {
			t.Fatalf("%s: VertexByLabel(%q) differs", label, name)
		}
	}
}

// TestFreezeEquivalent: a frozen view must answer every View method exactly
// like the mutable graph it was frozen from, at every worker count.
func TestFreezeEquivalent(t *testing.T) {
	g := buildTestGraph(t)
	for _, workers := range []int{1, 2, 8, 0} {
		f := g.Freeze(workers)
		if err := f.Validate(); err != nil {
			t.Fatalf("workers=%d: invalid frozen graph: %v", workers, err)
		}
		requireSameView(t, fmt.Sprintf("workers=%d", workers), g, f)
	}
}

// TestFreezeEquivalentRandom repeats the equivalence on random graphs.
func TestFreezeEquivalentRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 10; i++ {
		g := randomTestGraph(rng, 5+rng.Intn(60))
		f := g.Freeze(1 + rng.Intn(4))
		if err := f.Validate(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		requireSameView(t, fmt.Sprintf("random %d", i), g, f)
	}
}

// TestFrozenIsolation: mutating the master after Freeze must not change the
// frozen view — including interning new dictionary words.
func TestFrozenIsolation(t *testing.T) {
	g := buildTestGraph(t)
	f := g.Freeze(1)
	wantEdges := f.NumEdges()
	wantDict := f.Dict().Size()
	wantNeighbors := append([]VertexID(nil), f.Neighbors(0)...)

	g.InsertEdge(0, 3)
	g.RemoveEdge(0, 1)
	g.AddKeyword(3, "brand-new-word")
	g.RemoveKeyword(0, "x")

	if f.NumEdges() != wantEdges {
		t.Fatalf("frozen edge count moved: %d -> %d", wantEdges, f.NumEdges())
	}
	if f.Dict().Size() != wantDict {
		t.Fatalf("frozen dictionary moved: %d -> %d", wantDict, f.Dict().Size())
	}
	if _, ok := f.Dict().Lookup("brand-new-word"); ok {
		t.Fatal("frozen dictionary absorbed a word interned after Freeze")
	}
	if !reflect.DeepEqual(wantNeighbors, f.Neighbors(0)) {
		t.Fatalf("frozen adjacency moved: %v -> %v", wantNeighbors, f.Neighbors(0))
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFreezeReuseSharesDict: republication without dictionary growth shares
// the previous frozen dictionary; interning a new word forces a fresh clone.
func TestFreezeReuseSharesDict(t *testing.T) {
	g := buildTestGraph(t)
	f1 := g.Freeze(1)
	f2 := g.FreezeReuse(1, f1)
	if f2.Dict() != f1.Dict() {
		t.Fatal("FreezeReuse cloned the dictionary although it had not grown")
	}
	g.AddKeyword(0, "grown")
	f3 := g.FreezeReuse(1, f2)
	if f3.Dict() == f2.Dict() {
		t.Fatal("FreezeReuse shared a stale dictionary after growth")
	}
	if _, ok := f3.Dict().Lookup("grown"); !ok {
		t.Fatal("new frozen dictionary misses the interned word")
	}
	if _, ok := f2.Dict().Lookup("grown"); ok {
		t.Fatal("old frozen dictionary absorbed the interned word")
	}
	requireSameView(t, "after-growth", g, f3)
}

// TestFrozenSizeBytes pins the CSR payload accounting: 4 bytes per offset
// entry and per payload element.
func TestFrozenSizeBytes(t *testing.T) {
	g := buildTestGraph(t)
	f := g.Freeze(1)
	n := g.NumVertices()
	kwTotal := 0
	for v := 0; v < n; v++ {
		kwTotal += len(g.Keywords(VertexID(v)))
	}
	want := 4 * (2*(n+1) + 2*g.NumEdges() + kwTotal)
	if got := f.SizeBytes(); got != want {
		t.Fatalf("SizeBytes = %d, want %d", got, want)
	}
}

// TestFromFlatRoundTrip: Freeze → Flat → FromFlat must reproduce the graph,
// and the assembled graph must stay mutable without corrupting its shared
// backing arrays (the three-index-slice contract).
func TestFromFlatRoundTrip(t *testing.T) {
	g := buildTestGraph(t)
	f := g.Freeze(1)
	adjOff, adj, kwOff, kw := f.Flat()
	labels := make([]string, g.NumVertices())
	for v := range labels {
		labels[v] = g.Label(VertexID(v))
	}
	g2, err := FromFlat(labels, f.Dict().Words(),
		append([]int32(nil), kwOff...), append([]KeywordID(nil), kw...),
		append([]int32(nil), adjOff...), append([]VertexID(nil), adj...))
	if err != nil {
		t.Fatal(err)
	}
	requireSameView(t, "from-flat", g, g2)

	// Mutate one vertex's rows: neighbours of other vertices must not move.
	before := append([]VertexID(nil), g2.Neighbors(1)...)
	if !g2.InsertEdge(0, 4) {
		t.Fatal("InsertEdge refused a new edge")
	}
	if !g2.AddKeyword(0, "fresh") {
		t.Fatal("AddKeyword refused a new keyword")
	}
	if !reflect.DeepEqual(before, g2.Neighbors(1)) {
		t.Fatalf("mutating vertex 0 corrupted vertex 1's row: %v -> %v", before, g2.Neighbors(1))
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFromFlatRejectsCorrupt: malformed flat arrays must fail loudly.
func TestFromFlatRejectsCorrupt(t *testing.T) {
	g := buildTestGraph(t)
	f := g.Freeze(1)
	adjOff, adj, kwOff, kw := f.Flat()
	labels := make([]string, g.NumVertices())
	cp := func() ([]int32, []VertexID, []int32, []KeywordID) {
		return append([]int32(nil), adjOff...), append([]VertexID(nil), adj...),
			append([]int32(nil), kwOff...), append([]KeywordID(nil), kw...)
	}
	words := f.Dict().Words()

	ao, ad, ko, kws := cp()
	ad[0] = VertexID(g.NumVertices()) // out-of-range neighbour
	if _, err := FromFlat(labels, words, ko, kws, ao, ad); err == nil {
		t.Fatal("out-of-range neighbour accepted")
	}
	ao, ad, ko, kws = cp()
	ao[1] = ao[2] + 1 // non-monotone offsets
	if _, err := FromFlat(labels, words, ko, kws, ao, ad); err == nil {
		t.Fatal("non-monotone offsets accepted")
	}
	ao, ad, ko, kws = cp()
	if len(kws) > 0 {
		kws[0] = KeywordID(len(words)) // out-of-range keyword
		if _, err := FromFlat(labels, words, ko, kws, ao, ad); err == nil {
			t.Fatal("out-of-range keyword accepted")
		}
	}
	ao, ad, ko, kws = cp()
	if _, err := FromFlat(labels, append(words[:len(words):len(words)], words[0]), ko, kws, ao, ad); err == nil {
		t.Fatal("duplicate dictionary word accepted")
	}
}
