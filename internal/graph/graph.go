// Package graph provides the attributed-graph substrate used by the ACQ
// library: an undirected graph whose vertices carry sets of interned
// keywords, plus the induced-subgraph primitives (connected components,
// keyword filtering) that every community-search algorithm builds on.
//
// The representation follows the paper's model (Fang et al., PVLDB 2016,
// Section 3): G(V, E) undirected, each vertex v has a keyword set W(v).
// Vertices are dense int32 IDs; keywords are interned to dense int32 IDs
// through a Dict so that keyword-set operations are sorted-slice merges
// rather than string comparisons.
package graph

import (
	"fmt"
	"sort"

	"github.com/acq-search/acq/internal/para"
)

// VertexID identifies a vertex. IDs are dense: 0..NumVertices-1.
type VertexID int32

// KeywordID identifies an interned keyword. IDs are dense: 0..Dict.Size()-1.
type KeywordID int32

// Graph is an undirected attributed graph. The zero value is an empty graph;
// use a Builder to construct one, or the mutation methods (InsertEdge,
// AddKeyword, ...) to evolve an existing graph.
//
// Invariants maintained by all constructors and mutators:
//   - adjacency lists are sorted, contain no duplicates and no self-loops;
//   - keyword lists are sorted and contain no duplicates;
//   - the edge count m counts each undirected edge once.
type Graph struct {
	adj    [][]VertexID
	kw     [][]KeywordID
	dict   *Dict
	labels []string
	byName map[string]VertexID
	m      int
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.adj) }

// NumEdges returns |E| (each undirected edge counted once).
func (g *Graph) NumEdges() int { return g.m }

// Degree returns the degree of v in g.
func (g *Graph) Degree(v VertexID) int { return len(g.adj[v]) }

// Neighbors returns the sorted adjacency list of v. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Neighbors(v VertexID) []VertexID { return g.adj[v] }

// Keywords returns the sorted keyword set W(v). The returned slice is owned
// by the graph and must not be modified.
func (g *Graph) Keywords(v VertexID) []KeywordID { return g.kw[v] }

// Dict returns the keyword dictionary shared by all vertices.
func (g *Graph) Dict() *Dict { return g.dict }

// Label returns the human-readable name of v ("" if none was assigned).
func (g *Graph) Label(v VertexID) string {
	if int(v) < len(g.labels) {
		return g.labels[v]
	}
	return ""
}

// VertexByLabel resolves a vertex by its label.
func (g *Graph) VertexByLabel(name string) (VertexID, bool) {
	v, ok := g.byName[name]
	return v, ok
}

// KeywordStrings materialises W(v) as strings, in dictionary order.
func (g *Graph) KeywordStrings(v VertexID) []string {
	out := make([]string, len(g.kw[v]))
	for i, id := range g.kw[v] {
		out[i] = g.dict.Word(id)
	}
	return out
}

// HasEdge reports whether {u, v} is an edge of g.
func (g *Graph) HasEdge(u, v VertexID) bool {
	if u == v {
		return false
	}
	// Search the shorter list.
	a, b := u, v
	if len(g.adj[a]) > len(g.adj[b]) {
		a, b = b, a
	}
	return containsVertex(g.adj[a], b)
}

// HasKeyword reports whether w ∈ W(v).
func (g *Graph) HasKeyword(v VertexID, w KeywordID) bool {
	return containsKeyword(g.kw[v], w)
}

// HasAllKeywords reports whether set ⊆ W(v). set must be sorted.
func (g *Graph) HasAllKeywords(v VertexID, set []KeywordID) bool {
	return hasAllSorted(g.kw[v], set)
}

// CountSharedKeywords returns |W(v) ∩ set|. set must be sorted.
func (g *Graph) CountSharedKeywords(v VertexID, set []KeywordID) int {
	return countSharedSorted(g.kw[v], set)
}

// AvgKeywords returns the average keyword-set size l̂ over all vertices.
func (g *Graph) AvgKeywords() float64 {
	if len(g.kw) == 0 {
		return 0
	}
	total := 0
	for _, w := range g.kw {
		total += len(w)
	}
	return float64(total) / float64(len(g.kw))
}

// AvgDegree returns the average vertex degree d̂ = 2m/n.
func (g *Graph) AvgDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(len(g.adj))
}

// InsertEdge adds the undirected edge {u, v}. It reports whether the edge was
// newly inserted (false if it already existed or u == v).
func (g *Graph) InsertEdge(u, v VertexID) bool {
	if u == v || containsVertex(g.adj[u], v) {
		return false
	}
	g.adj[u] = insertSortedVertex(g.adj[u], v)
	g.adj[v] = insertSortedVertex(g.adj[v], u)
	g.m++
	return true
}

// RemoveEdge deletes the undirected edge {u, v}, reporting whether it existed.
func (g *Graph) RemoveEdge(u, v VertexID) bool {
	if u == v || !containsVertex(g.adj[u], v) {
		return false
	}
	g.adj[u] = removeSortedVertex(g.adj[u], v)
	g.adj[v] = removeSortedVertex(g.adj[v], u)
	g.m--
	return true
}

// AddKeyword attaches keyword word to v, interning it if necessary. It
// reports whether W(v) changed.
func (g *Graph) AddKeyword(v VertexID, word string) bool {
	id := g.dict.Intern(word)
	if containsKeyword(g.kw[v], id) {
		return false
	}
	g.kw[v] = insertSortedKeyword(g.kw[v], id)
	return true
}

// RemoveKeyword detaches keyword word from v, reporting whether it was there.
func (g *Graph) RemoveKeyword(v VertexID, word string) bool {
	id, ok := g.dict.Lookup(word)
	if !ok || !containsKeyword(g.kw[v], id) {
		return false
	}
	g.kw[v] = removeSortedKeyword(g.kw[v], id)
	return true
}

// Clone returns a deep copy of g: adjacency, keyword sets, labels, the
// label index and the keyword dictionary are all duplicated, so mutating
// either graph never affects the other. Nothing is shared and nothing is
// copy-on-write; for a cheap immutable read-only copy use Freeze instead.
func (g *Graph) Clone() *Graph { return g.CloneWorkers(1) }

// CloneWorkers is Clone with the per-vertex adjacency and keyword copying
// fanned out over workers goroutines (≤ 0 means one per CPU, 1 runs inline).
// The copy is identical for any worker count; the snapshot-publication path
// uses it so copy-on-write republication scales with the cores available.
func (g *Graph) CloneWorkers(workers int) *Graph {
	c := &Graph{
		adj:    make([][]VertexID, len(g.adj)),
		kw:     make([][]KeywordID, len(g.kw)),
		dict:   g.dict.Clone(),
		labels: append([]string(nil), g.labels...),
		byName: make(map[string]VertexID, len(g.byName)),
		m:      g.m,
	}
	para.ForEachChunk(workers, len(g.adj), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c.adj[i] = append([]VertexID(nil), g.adj[i]...)
		}
	})
	para.ForEachChunk(workers, len(g.kw), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c.kw[i] = append([]KeywordID(nil), g.kw[i]...)
		}
	})
	for k, v := range g.byName {
		c.byName[k] = v
	}
	return c
}

// StripKeywords returns a copy of g with every keyword set emptied. It is
// used for the non-attributed experiments (paper Figure 16).
func (g *Graph) StripKeywords() *Graph {
	c := g.Clone()
	for i := range c.kw {
		c.kw[i] = nil
	}
	c.dict = NewDict()
	return c
}

// Validate checks the structural invariants of the graph representation and
// returns a descriptive error on the first violation. It is intended for
// tests and for data loaded from external files.
func (g *Graph) Validate() error {
	edges := 0
	for v, ns := range g.adj {
		for i, u := range ns {
			if u == VertexID(v) {
				return fmt.Errorf("graph: self-loop at vertex %d", v)
			}
			if int(u) < 0 || int(u) >= len(g.adj) {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, u)
			}
			if i > 0 && ns[i-1] >= u {
				return fmt.Errorf("graph: adjacency of vertex %d not strictly sorted", v)
			}
			if !containsVertex(g.adj[u], VertexID(v)) {
				return fmt.Errorf("graph: edge %d->%d has no reverse edge", v, u)
			}
		}
		edges += len(ns)
	}
	if edges != 2*g.m {
		return fmt.Errorf("graph: edge count %d does not match adjacency total %d", g.m, edges)
	}
	for v, ws := range g.kw {
		for i, w := range ws {
			if int(w) < 0 || int(w) >= g.dict.Size() {
				return fmt.Errorf("graph: vertex %d has out-of-range keyword %d", v, w)
			}
			if i > 0 && ws[i-1] >= w {
				return fmt.Errorf("graph: keywords of vertex %d not strictly sorted", v)
			}
		}
	}
	return nil
}

// sorted-slice helpers

func containsVertex(s []VertexID, v VertexID) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	return i < len(s) && s[i] == v
}

func containsKeyword(s []KeywordID, w KeywordID) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= w })
	return i < len(s) && s[i] == w
}

func insertSortedVertex(s []VertexID, v VertexID) []VertexID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeSortedVertex(s []VertexID, v VertexID) []VertexID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}

func insertSortedKeyword(s []KeywordID, w KeywordID) []KeywordID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= w })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = w
	return s
}

func removeSortedKeyword(s []KeywordID, w KeywordID) []KeywordID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= w })
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}

// SortKeywordSet sorts and deduplicates a keyword set in place, returning the
// (possibly shortened) slice.
func SortKeywordSet(s []KeywordID) []KeywordID {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:0]
	for i, w := range s {
		if i == 0 || s[i-1] != w {
			out = append(out, w)
		}
	}
	return out
}

// IntersectVertices returns the intersection of two sorted vertex slices.
func IntersectVertices(a, b []VertexID) []VertexID {
	if len(a) > len(b) {
		a, b = b, a
	}
	out := make([]VertexID, 0, len(a))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
