package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func buildTriangleWithTail(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder()
	b.AddVertex("a", "music", "art")
	b.AddVertex("b", "music")
	b.AddVertex("c", "music", "art", "yoga")
	b.AddVertex("d", "yoga")
	b.AddEdgeByLabel("a", "b")
	b.AddEdgeByLabel("b", "c")
	b.AddEdgeByLabel("a", "c")
	b.AddEdgeByLabel("c", "d")
	return b.MustBuild()
}

func TestBuilderBasics(t *testing.T) {
	g := buildTriangleWithTail(t)
	if g.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	a, _ := g.VertexByLabel("a")
	c, _ := g.VertexByLabel("c")
	if g.Degree(a) != 2 || g.Degree(c) != 3 {
		t.Fatalf("degrees: a=%d c=%d", g.Degree(a), g.Degree(c))
	}
	if !g.HasEdge(a, c) || g.HasEdge(a, a) {
		t.Fatal("HasEdge wrong")
	}
	if got := g.KeywordStrings(c); len(got) != 3 {
		t.Fatalf("keywords of c = %v", got)
	}
}

func TestBuilderDeduplicatesEdgesAndSelfLoops(t *testing.T) {
	b := NewBuilder()
	u := b.AddVertex("u")
	v := b.AddVertex("v")
	b.AddEdge(u, v)
	b.AddEdge(v, u)
	b.AddEdge(u, v)
	b.AddEdge(u, u)
	g := b.MustBuild()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 after dedup", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderRejectsOutOfRangeEdge(t *testing.T) {
	b := NewBuilder()
	b.AddVertex("only")
	b.AddEdge(0, 5)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted out-of-range edge")
	}
}

func TestBuilderRejectsDuplicateLabels(t *testing.T) {
	b := NewBuilder()
	b.AddVertex("same")
	b.AddVertex("same")
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted duplicate labels")
	}
}

func TestBuilderDuplicateKeywordsDeduped(t *testing.T) {
	b := NewBuilder()
	v := b.AddVertex("v", "x", "x", "y", "x")
	g := b.MustBuild()
	if len(g.Keywords(v)) != 2 {
		t.Fatalf("keywords = %v, want 2 distinct", g.KeywordStrings(v))
	}
}

func TestMutation(t *testing.T) {
	g := buildTriangleWithTail(t)
	a, _ := g.VertexByLabel("a")
	d, _ := g.VertexByLabel("d")
	if !g.InsertEdge(a, d) {
		t.Fatal("InsertEdge returned false for new edge")
	}
	if g.InsertEdge(a, d) {
		t.Fatal("InsertEdge returned true for duplicate")
	}
	if g.InsertEdge(a, a) {
		t.Fatal("InsertEdge accepted self-loop")
	}
	if g.NumEdges() != 5 {
		t.Fatalf("NumEdges = %d, want 5", g.NumEdges())
	}
	if !g.RemoveEdge(a, d) || g.RemoveEdge(a, d) {
		t.Fatal("RemoveEdge wrong")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}

	if !g.AddKeyword(a, "dance") || g.AddKeyword(a, "dance") {
		t.Fatal("AddKeyword wrong")
	}
	if !g.HasKeyword(a, mustID(t, g, "dance")) {
		t.Fatal("keyword not attached")
	}
	if !g.RemoveKeyword(a, "dance") || g.RemoveKeyword(a, "dance") {
		t.Fatal("RemoveKeyword wrong")
	}
	if g.RemoveKeyword(a, "never-interned") {
		t.Fatal("RemoveKeyword invented a keyword")
	}
}

func mustID(t *testing.T, g *Graph, w string) KeywordID {
	t.Helper()
	id, ok := g.Dict().Lookup(w)
	if !ok {
		t.Fatalf("keyword %q not interned", w)
	}
	return id
}

func TestHasAllKeywordsAndCount(t *testing.T) {
	g := buildTriangleWithTail(t)
	c, _ := g.VertexByLabel("c")
	b, _ := g.VertexByLabel("b")
	music := mustID(t, g, "music")
	art := mustID(t, g, "art")
	yoga := mustID(t, g, "yoga")
	set := SortKeywordSet([]KeywordID{music, art, yoga})
	if !g.HasAllKeywords(c, set) {
		t.Fatal("c should contain all three")
	}
	if g.HasAllKeywords(b, set) {
		t.Fatal("b should not contain all three")
	}
	if got := g.CountSharedKeywords(b, set); got != 1 {
		t.Fatalf("CountSharedKeywords(b) = %d, want 1", got)
	}
	if !g.HasAllKeywords(b, nil) {
		t.Fatal("empty set must always be contained")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := buildTriangleWithTail(t)
	c := g.Clone()
	a, _ := g.VertexByLabel("a")
	d, _ := g.VertexByLabel("d")
	g.InsertEdge(a, d)
	g.AddKeyword(a, "extra")
	if c.NumEdges() != 4 {
		t.Fatal("clone saw the mutation")
	}
	if _, ok := c.Dict().Lookup("extra"); ok {
		t.Fatal("clone dictionary saw the mutation")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStripKeywords(t *testing.T) {
	g := buildTriangleWithTail(t)
	s := g.StripKeywords()
	for v := 0; v < s.NumVertices(); v++ {
		if len(s.Keywords(VertexID(v))) != 0 {
			t.Fatalf("vertex %d still has keywords", v)
		}
	}
	if s.NumEdges() != g.NumEdges() {
		t.Fatal("StripKeywords changed structure")
	}
}

func TestComponentOfAndComponents(t *testing.T) {
	g := buildTriangleWithTail(t)
	ops := NewSetOps(g)
	a, _ := g.VertexByLabel("a")
	b, _ := g.VertexByLabel("b")
	c, _ := g.VertexByLabel("c")
	d, _ := g.VertexByLabel("d")

	comp := ops.ComponentOf([]VertexID{a, b, d}, a)
	// d is only reachable via c, which is excluded.
	if len(comp) != 2 {
		t.Fatalf("component = %v, want {a,b}", comp)
	}
	if got := ops.ComponentOf([]VertexID{a, b}, d); got != nil {
		t.Fatalf("ComponentOf with q outside cand = %v, want nil", got)
	}
	comps := ops.Components([]VertexID{a, b, c, d})
	if len(comps) != 1 || len(comps[0]) != 4 {
		t.Fatalf("components = %v", comps)
	}
	comps = ops.Components([]VertexID{a, d})
	if len(comps) != 2 {
		t.Fatalf("components = %v, want two singletons", comps)
	}
}

func TestPeelToMinDegree(t *testing.T) {
	g := buildTriangleWithTail(t)
	ops := NewSetOps(g)
	all := []VertexID{0, 1, 2, 3}
	surv := ops.PeelToMinDegree(all, 2)
	if len(surv) != 3 {
		t.Fatalf("2-core = %v, want the triangle", surv)
	}
	if got := ops.PeelToMinDegree(all, 3); len(got) != 0 {
		t.Fatalf("3-core = %v, want empty", got)
	}
	if got := ops.PeelToMinDegree(all, 1); len(got) != 4 {
		t.Fatalf("1-core = %v, want all", got)
	}
}

func TestInducedCounts(t *testing.T) {
	g := buildTriangleWithTail(t)
	ops := NewSetOps(g)
	if m := ops.InducedEdgeCount([]VertexID{0, 1, 2}); m != 3 {
		t.Fatalf("induced edges = %d, want 3", m)
	}
	degs := ops.InducedDegrees([]VertexID{0, 1, 2, 3})
	sort.Ints(degs)
	want := []int{1, 2, 2, 3}
	for i := range want {
		if degs[i] != want[i] {
			t.Fatalf("induced degrees = %v, want %v", degs, want)
		}
	}
}

func TestMarkerResetSemantics(t *testing.T) {
	mk := NewMarker(4)
	mk.Add(1)
	mk.Add(2)
	if !mk.Has(1) || mk.Has(0) {
		t.Fatal("marker membership wrong")
	}
	mk.Remove(1)
	if mk.Has(1) || !mk.Has(2) {
		t.Fatal("remove wrong")
	}
	mk.Reset()
	if mk.Has(2) {
		t.Fatal("reset did not clear")
	}
	mk.Grow(10)
	mk.Add(9)
	if !mk.Has(9) {
		t.Fatal("grow lost membership support")
	}
}

func TestIntersectVertices(t *testing.T) {
	got := IntersectVertices([]VertexID{1, 3, 5, 9}, []VertexID{2, 3, 4, 5, 10})
	if len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("intersect = %v", got)
	}
	if got := IntersectVertices(nil, []VertexID{1}); len(got) != 0 {
		t.Fatalf("intersect with nil = %v", got)
	}
}

// Property: on random graphs, peeling yields a set where every vertex has
// induced degree ≥ k, and it is the unique maximal such subset (adding back
// any removed vertex violates maximality of the fixpoint).
func TestPeelPropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		b := NewBuilder()
		for i := 0; i < n; i++ {
			b.AddVertex("")
		}
		for e := 0; e < n*2; e++ {
			b.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)))
		}
		g := b.MustBuild()
		ops := NewSetOps(g)
		all := make([]VertexID, n)
		for i := range all {
			all[i] = VertexID(i)
		}
		k := 1 + rng.Intn(4)
		surv := ops.PeelToMinDegree(all, k)
		for _, d := range ops.InducedDegrees(surv) {
			if d < k {
				return false
			}
		}
		// Maximality: the survivors must be a superset of any vertex set
		// with min degree ≥ k. Check against a brute-force fixpoint.
		brute := bruteKCore(g, k)
		if len(brute) != len(surv) {
			return false
		}
		in := map[VertexID]bool{}
		for _, v := range surv {
			in[v] = true
		}
		for _, v := range brute {
			if !in[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func bruteKCore(g *Graph, k int) []VertexID {
	alive := make([]bool, g.NumVertices())
	for i := range alive {
		alive[i] = true
	}
	for changed := true; changed; {
		changed = false
		for v := 0; v < g.NumVertices(); v++ {
			if !alive[v] {
				continue
			}
			d := 0
			for _, u := range g.Neighbors(VertexID(v)) {
				if alive[u] {
					d++
				}
			}
			if d < k {
				alive[v] = false
				changed = true
			}
		}
	}
	var out []VertexID
	for v, a := range alive {
		if a {
			out = append(out, VertexID(v))
		}
	}
	return out
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := buildTriangleWithTail(t)
	// Corrupt: unsorted adjacency.
	g.adj[2][0], g.adj[2][1] = g.adj[2][1], g.adj[2][0]
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted unsorted adjacency")
	}
}

func TestDict(t *testing.T) {
	d := NewDict()
	a := d.Intern("alpha")
	if d.Intern("alpha") != a {
		t.Fatal("Intern not idempotent")
	}
	if _, ok := d.Lookup("beta"); ok {
		t.Fatal("Lookup invented a word")
	}
	b := d.Intern("beta")
	if d.Word(b) != "beta" || d.Size() != 2 {
		t.Fatal("dict bookkeeping wrong")
	}
	ids := d.InternAll([]string{"c", "a", "c", "b"})
	if len(ids) != 3 {
		t.Fatalf("InternAll = %v", ids)
	}
	got, missing := d.LookupAll([]string{"alpha", "nope", "beta"})
	if len(got) != 2 || missing != 1 {
		t.Fatalf("LookupAll = %v missing=%d", got, missing)
	}
}
