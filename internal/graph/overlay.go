package graph

import (
	"math"

	"github.com/acq-search/acq/internal/para"
)

// Overlay is the third View implementation: a small mutable delta merged over
// an immutable Frozen base. It is the publication form of the LSM-style write
// path — effective mutations override single per-vertex rows instead of
// re-freezing the whole graph, so publishing a serving snapshot after a write
// costs O(delta + n/8) (two int32 index arrays plus the changed rows) rather
// than O(n+m).
//
// The representation is a row-override table: adjIdx[v] ≥ 0 means vertex v's
// adjacency is adjRows[adjIdx[v]] (a private sorted copy taken when v was
// first dirtied); -1 means the row is unchanged and reads fall through to the
// base CSR. Keyword rows work the same way. Lookups therefore cost one extra
// array probe over a Frozen read — no hashing, no branching on map state —
// which keeps the hot peeling/BFS loops within noise of the frozen path.
//
// An Overlay is immutable once constructed: the write path builds a fresh one
// per publication (sharing the base, the unchanged row storage and the
// dictionary), so any number of concurrent readers may hold one forever.
// Compaction folds an overlay into a new Frozen base via Materialize.
type Overlay struct {
	base    *Frozen
	adjIdx  []int32 // len NumVertices; -1 = read base, else index into adjRows
	kwIdx   []int32
	adjRows [][]VertexID
	kwRows  [][]KeywordID
	dict    *Dict
	m       int
	kwTotal int // Σ|W(v)| over all vertices, for O(1) AvgKeywords
}

// NewOverlay assembles an overlay view of base with the given row overrides.
// The index slices must have length base.NumVertices(), with -1 marking
// unchanged rows and non-negative entries indexing the row slices. A nil dict
// shares the base's dictionary (the steady state: no new keyword interned
// since the base was frozen). The overlay takes ownership of every argument;
// callers must not mutate them afterwards.
func NewOverlay(base *Frozen, adjIdx []int32, adjRows [][]VertexID, kwIdx []int32, kwRows [][]KeywordID, dict *Dict, m, kwTotal int) *Overlay {
	n := base.NumVertices()
	if len(adjIdx) != n || len(kwIdx) != n {
		panic("graph: NewOverlay: index arrays must cover every vertex")
	}
	if dict == nil {
		dict = base.dict
	}
	return &Overlay{
		base:    base,
		adjIdx:  adjIdx,
		kwIdx:   kwIdx,
		adjRows: adjRows,
		kwRows:  kwRows,
		dict:    dict,
		m:       m,
		kwTotal: kwTotal,
	}
}

// Base returns the frozen base the overlay's deltas apply to.
func (o *Overlay) Base() *Frozen { return o.base }

// NumVertices returns |V| (vertex count is fixed after construction, so it is
// always the base's).
func (o *Overlay) NumVertices() int { return o.base.NumVertices() }

// NumEdges returns |E| (each undirected edge counted once).
func (o *Overlay) NumEdges() int { return o.m }

// Degree returns the degree of v.
func (o *Overlay) Degree(v VertexID) int {
	if i := o.adjIdx[v]; i >= 0 {
		return len(o.adjRows[i])
	}
	return o.base.Degree(v)
}

// Neighbors returns the sorted adjacency list of v, owned by the view.
func (o *Overlay) Neighbors(v VertexID) []VertexID {
	if i := o.adjIdx[v]; i >= 0 {
		return o.adjRows[i]
	}
	return o.base.Neighbors(v)
}

// Keywords returns the sorted keyword set W(v), owned by the view.
func (o *Overlay) Keywords(v VertexID) []KeywordID {
	if i := o.kwIdx[v]; i >= 0 {
		return o.kwRows[i]
	}
	return o.base.Keywords(v)
}

// Dict returns the keyword dictionary.
func (o *Overlay) Dict() *Dict { return o.dict }

// Label returns the human-readable name of v ("" if none was assigned).
func (o *Overlay) Label(v VertexID) string { return o.base.Label(v) }

// VertexByLabel resolves a vertex by its label.
func (o *Overlay) VertexByLabel(name string) (VertexID, bool) { return o.base.VertexByLabel(name) }

// KeywordStrings materialises W(v) as strings, in dictionary order.
func (o *Overlay) KeywordStrings(v VertexID) []string {
	kws := o.Keywords(v)
	out := make([]string, len(kws))
	for i, id := range kws {
		out[i] = o.dict.Word(id)
	}
	return out
}

// HasEdge reports whether {u, v} is an edge.
func (o *Overlay) HasEdge(u, v VertexID) bool {
	if u == v {
		return false
	}
	a, b := u, v
	if o.Degree(a) > o.Degree(b) {
		a, b = b, a
	}
	return containsVertex(o.Neighbors(a), b)
}

// HasKeyword reports whether w ∈ W(v).
func (o *Overlay) HasKeyword(v VertexID, w KeywordID) bool {
	return containsKeyword(o.Keywords(v), w)
}

// HasAllKeywords reports whether set ⊆ W(v). set must be sorted.
func (o *Overlay) HasAllKeywords(v VertexID, set []KeywordID) bool {
	return hasAllSorted(o.Keywords(v), set)
}

// CountSharedKeywords returns |W(v) ∩ set|. set must be sorted.
func (o *Overlay) CountSharedKeywords(v VertexID, set []KeywordID) int {
	return countSharedSorted(o.Keywords(v), set)
}

// AvgKeywords returns the average keyword-set size l̂ over all vertices.
func (o *Overlay) AvgKeywords() float64 {
	n := o.NumVertices()
	if n == 0 {
		return 0
	}
	return float64(o.kwTotal) / float64(n)
}

// AvgDegree returns the average vertex degree d̂ = 2m/n.
func (o *Overlay) AvgDegree() float64 {
	n := o.NumVertices()
	if n == 0 {
		return 0
	}
	return 2 * float64(o.m) / float64(n)
}

// DeltaRows reports how many adjacency and keyword rows the overlay
// overrides — the write-pressure figure surfaced by serving health probes.
func (o *Overlay) DeltaRows() (adjRows, kwRows int) {
	return len(o.adjRows), len(o.kwRows)
}

// Materialize folds the overlay into a fresh Frozen base: the CSR arrays are
// rebuilt with every override applied, fanning the row copies out over
// workers goroutines (≤ 0 means one per CPU, 1 runs inline). The result
// shares the overlay's dictionary and the base's label tables — all immutable
// — so compaction allocates only the four flat payload arrays. Materialize
// reads nothing mutable and is safe to run concurrently with readers of the
// overlay, which is what lets compaction run off the serving path.
func (o *Overlay) Materialize(workers int) *Frozen {
	n := o.NumVertices()
	f := &Frozen{
		adjOff: make([]int32, n+1),
		kwOff:  make([]int32, n+1),
		dict:   o.dict,
		labels: o.base.labels,
		byName: o.base.byName,
		m:      o.m,
	}
	adjTotal, kwTotal := 0, 0
	for v := 0; v < n; v++ {
		adjTotal += o.Degree(VertexID(v))
		kwTotal += len(o.Keywords(VertexID(v)))
		f.adjOff[v+1] = int32(adjTotal)
		f.kwOff[v+1] = int32(kwTotal)
	}
	if adjTotal > math.MaxInt32 || kwTotal > math.MaxInt32 {
		panic("graph: Materialize: graph exceeds int32 CSR offsets")
	}
	f.adj = make([]VertexID, adjTotal)
	f.kw = make([]KeywordID, kwTotal)
	para.ForEachChunk(workers, n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			copy(f.adj[f.adjOff[v]:f.adjOff[v+1]], o.Neighbors(VertexID(v)))
			copy(f.kw[f.kwOff[v]:f.kwOff[v+1]], o.Keywords(VertexID(v)))
		}
	})
	return f
}
