package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// overlayTracker mirrors the bookkeeping the acq write path keeps: a frozen
// base plus row overrides copied from the mutable master whenever a vertex is
// dirtied. Building an Overlay from it must reproduce the master exactly.
type overlayTracker struct {
	base    *Frozen
	master  *Graph
	adjIdx  []int32
	kwIdx   []int32
	adjRows [][]VertexID
	kwRows  [][]KeywordID
	kwTotal int
}

func newOverlayTracker(master *Graph, workers int) *overlayTracker {
	base := master.Freeze(workers)
	n := master.NumVertices()
	tr := &overlayTracker{base: base, master: master, adjIdx: make([]int32, n), kwIdx: make([]int32, n)}
	for v := 0; v < n; v++ {
		tr.adjIdx[v] = -1
		tr.kwIdx[v] = -1
		tr.kwTotal += len(master.Keywords(VertexID(v)))
	}
	return tr
}

func (tr *overlayTracker) dirtyAdj(v VertexID) {
	row := append([]VertexID(nil), tr.master.Neighbors(v)...)
	if i := tr.adjIdx[v]; i >= 0 {
		tr.adjRows[i] = row
		return
	}
	tr.adjIdx[v] = int32(len(tr.adjRows))
	tr.adjRows = append(tr.adjRows, row)
}

func (tr *overlayTracker) dirtyKw(v VertexID) {
	row := append([]KeywordID(nil), tr.master.Keywords(v)...)
	if i := tr.kwIdx[v]; i >= 0 {
		tr.kwRows[i] = row
		return
	}
	tr.kwIdx[v] = int32(len(tr.kwRows))
	tr.kwRows = append(tr.kwRows, row)
}

// overlay publishes the tracker state exactly like acq's publish path: index
// arrays are copied, row storage is shared, and the dictionary is cloned only
// when the master interned new words since the freeze.
func (tr *overlayTracker) overlay() *Overlay {
	var dict *Dict
	if tr.master.Dict().Size() != tr.base.Dict().Size() {
		dict = tr.master.Dict().Clone()
	}
	return NewOverlay(tr.base,
		append([]int32(nil), tr.adjIdx...), append([][]VertexID(nil), tr.adjRows...),
		append([]int32(nil), tr.kwIdx...), append([][]KeywordID(nil), tr.kwRows...),
		dict, tr.master.NumEdges(), tr.kwTotal)
}

// mutate applies one random mutation to the master and records it.
func (tr *overlayTracker) mutate(rng *rand.Rand) {
	n := tr.master.NumVertices()
	u := VertexID(rng.Intn(n))
	v := VertexID(rng.Intn(n))
	switch rng.Intn(4) {
	case 0:
		if tr.master.InsertEdge(u, v) {
			tr.dirtyAdj(u)
			tr.dirtyAdj(v)
		}
	case 1:
		if tr.master.RemoveEdge(u, v) {
			tr.dirtyAdj(u)
			tr.dirtyAdj(v)
		}
	case 2:
		word := fmt.Sprintf("k%d", rng.Intn(12))
		if tr.master.AddKeyword(u, word) {
			tr.dirtyKw(u)
			tr.kwTotal++
		}
	default:
		word := fmt.Sprintf("k%d", rng.Intn(12))
		if tr.master.RemoveKeyword(u, word) {
			tr.dirtyKw(u)
			tr.kwTotal--
		}
	}
}

// TestOverlayEquivalent: an overlay must answer every View method exactly
// like the mutated master it tracks, and Materialize must fold it into a
// valid Frozen with the same answers.
func TestOverlayEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for round := 0; round < 8; round++ {
		g := randomTestGraph(rng, 5+rng.Intn(50))
		tr := newOverlayTracker(g, 1+rng.Intn(3))
		steps := 1 + rng.Intn(80)
		for i := 0; i < steps; i++ {
			tr.mutate(rng)
		}
		o := tr.overlay()
		requireSameView(t, fmt.Sprintf("round %d overlay", round), g, o)
		for _, workers := range []int{1, 4} {
			f := o.Materialize(workers)
			if err := f.Validate(); err != nil {
				t.Fatalf("round %d: invalid materialized graph: %v", round, err)
			}
			requireSameView(t, fmt.Sprintf("round %d materialized w=%d", round, workers), g, f)
		}
	}
}

// TestOverlayEmptyDelta: with no overrides the overlay is a pure pass-through
// sharing the base's dictionary, and Materialize reproduces the base.
func TestOverlayEmptyDelta(t *testing.T) {
	g := buildTestGraph(t)
	tr := newOverlayTracker(g, 1)
	o := tr.overlay()
	if o.Dict() != tr.base.Dict() {
		t.Fatal("empty overlay should share the base dictionary")
	}
	if a, k := o.DeltaRows(); a != 0 || k != 0 {
		t.Fatalf("empty overlay reports %d/%d delta rows", a, k)
	}
	requireSameView(t, "empty overlay", g, o)
	requireSameView(t, "empty materialize", tr.base, o.Materialize(1))
}

// TestOverlayIsolation: an overlay published before further mutations must
// keep answering with the state it captured.
func TestOverlayIsolation(t *testing.T) {
	g := buildTestGraph(t)
	tr := newOverlayTracker(g, 1)
	if !g.InsertEdge(0, 3) {
		t.Fatal("setup: edge {0,3} should be new")
	}
	tr.dirtyAdj(0)
	tr.dirtyAdj(3)
	o := tr.overlay()
	wantDeg := o.Degree(0)
	wantDict := o.Dict().Size()

	if !g.RemoveEdge(0, 3) {
		t.Fatal("mutate: edge {0,3} should exist")
	}
	tr.dirtyAdj(0)
	tr.dirtyAdj(3)
	if !g.AddKeyword(0, "brand-new-word") {
		t.Fatal("mutate: keyword should be new")
	}
	tr.dirtyKw(0)
	tr.kwTotal++

	if o.Degree(0) != wantDeg {
		t.Fatalf("published overlay saw later mutation: degree %d != %d", o.Degree(0), wantDeg)
	}
	if o.Dict().Size() != wantDict {
		t.Fatal("published overlay saw later dictionary growth")
	}
	if !o.HasEdge(0, 3) {
		t.Fatal("published overlay lost its captured edge")
	}
	// The next publication sees everything, including the grown dictionary
	// via a private clone.
	o2 := tr.overlay()
	if o2.Dict() == g.Dict() || o2.Dict().Size() != g.Dict().Size() {
		t.Fatal("second overlay should carry a private dictionary clone")
	}
	requireSameView(t, "second overlay", g, o2)
}
