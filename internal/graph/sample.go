package graph

import "math/rand"

// Induced returns the subgraph induced by keep (relabelled to dense IDs in
// keep's order), preserving labels and keywords. It backs the paper's vertex
// scalability experiments (Figures 13 and 14(m–p)): "randomly select 20%,
// 40%, ... of its vertices and obtain subgraphs induced by these vertex
// sets".
func Induced(g View, keep []VertexID) *Graph {
	remap := make([]int32, g.NumVertices())
	for i := range remap {
		remap[i] = -1
	}
	for i, v := range keep {
		remap[v] = int32(i)
	}
	b := NewBuilder()
	for _, v := range keep {
		b.AddVertex(g.Label(v), g.KeywordStrings(v)...)
	}
	for _, v := range keep {
		for _, u := range g.Neighbors(v) {
			if u > v && remap[u] >= 0 {
				b.AddEdge(VertexID(remap[v]), VertexID(remap[u]))
			}
		}
	}
	return b.MustBuild()
}

// SampleVertices returns a deterministic random sample of ⌈frac·n⌉ vertices.
func SampleVertices(g View, frac float64, seed int64) []VertexID {
	n := g.NumVertices()
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	want := int(frac * float64(n))
	if want > n {
		want = n
	}
	out := make([]VertexID, want)
	for i := 0; i < want; i++ {
		out[i] = VertexID(perm[i])
	}
	return out
}

// WithKeywordFraction returns a copy of g in which every vertex keeps a
// deterministic random fraction frac of its keywords (at least one when it
// had any and frac > 0). It backs the keyword scalability experiments
// (Figure 14(i–l)).
func WithKeywordFraction(g View, frac float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder()
	for v := 0; v < g.NumVertices(); v++ {
		id := VertexID(v)
		words := g.KeywordStrings(id)
		rng.Shuffle(len(words), func(i, j int) { words[i], words[j] = words[j], words[i] })
		want := int(frac * float64(len(words)))
		if want < 1 && len(words) > 0 && frac > 0 {
			want = 1
		}
		if want > len(words) {
			want = len(words)
		}
		b.AddVertex(g.Label(id), words[:want]...)
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(VertexID(v)) {
			if u > VertexID(v) {
				b.AddEdge(VertexID(v), u)
			}
		}
	}
	return b.MustBuild()
}
