package graph

import "github.com/acq-search/acq/internal/cancel"

// Marker is an epoch-based membership set over vertices. Resetting it is
// O(1) (the epoch is bumped), which keeps repeated induced-subgraph
// computations allocation-free — the query algorithms in internal/core call
// these primitives thousands of times per query.
type Marker struct {
	epoch uint32
	mark  []uint32
}

// NewMarker returns a marker for graphs with up to n vertices.
func NewMarker(n int) *Marker {
	return &Marker{epoch: 1, mark: make([]uint32, n)}
}

// Reset empties the set.
func (mk *Marker) Reset() {
	mk.epoch++
	if mk.epoch == 0 { // wrapped: clear storage once every 2^32 resets
		for i := range mk.mark {
			mk.mark[i] = 0
		}
		mk.epoch = 1
	}
}

// Grow ensures the marker can hold vertex IDs up to n-1.
func (mk *Marker) Grow(n int) {
	if n > len(mk.mark) {
		mk.mark = append(mk.mark, make([]uint32, n-len(mk.mark))...)
	}
}

// Add inserts v.
func (mk *Marker) Add(v VertexID) { mk.mark[v] = mk.epoch }

// AddAll inserts every vertex of vs.
func (mk *Marker) AddAll(vs []VertexID) {
	for _, v := range vs {
		mk.mark[v] = mk.epoch
	}
}

// Has reports membership of v.
func (mk *Marker) Has(v VertexID) bool { return mk.mark[v] == mk.epoch }

// Remove deletes v.
func (mk *Marker) Remove(v VertexID) { mk.mark[v] = mk.epoch - 1 }

// SetOps bundles the reusable scratch space for induced-subgraph operations
// on a fixed graph view (mutable or frozen). It is not safe for concurrent
// use; create one per goroutine.
type SetOps struct {
	g     View
	in    *Marker
	alive *Marker
	deg   []int32
	queue []VertexID

	// check, when non-nil, is polled (amortised) from every induced-subgraph
	// loop so a canceled context stops evaluation mid-operation. The nil
	// checker makes every poll a no-op, keeping the non-cancellable path hot.
	check *cancel.Checker
}

// NewSetOps returns scratch space sized for g.
func NewSetOps(g View) *SetOps {
	n := g.NumVertices()
	return &SetOps{
		g:     g,
		in:    NewMarker(n),
		alive: NewMarker(n),
		deg:   make([]int32, n),
		queue: make([]VertexID, 0, 256),
	}
}

// Graph returns the graph view this SetOps operates on.
func (s *SetOps) Graph() View { return s.g }

// SetChecker attaches a cancellation checker: subsequent operations tick it
// once per vertex visited and unwind (see internal/cancel) when the checker's
// context is canceled. A nil checker restores the unchecked fast path.
func (s *SetOps) SetChecker(c *cancel.Checker) { s.check = c }

// ComponentOf returns the connected component containing q in the subgraph
// induced by cand. It returns nil if q ∉ cand. The result is in BFS order.
func (s *SetOps) ComponentOf(cand []VertexID, q VertexID) []VertexID {
	s.in.Reset()
	s.in.AddAll(cand)
	if !s.in.Has(q) {
		return nil
	}
	s.alive.Reset() // reused as "visited"
	s.alive.Add(q)
	comp := make([]VertexID, 0, len(cand))
	comp = append(comp, q)
	for head := 0; head < len(comp); head++ {
		v := comp[head]
		s.check.Tick(1)
		for _, u := range s.g.Neighbors(v) {
			if s.in.Has(u) && !s.alive.Has(u) {
				s.alive.Add(u)
				comp = append(comp, u)
			}
		}
	}
	return comp
}

// ExpandComponentOf returns the connected component containing q in the
// subgraph induced by the vertices satisfying keep, grown by BFS from q
// without materialising that vertex set first. keep is consulted at most
// once per vertex (results are memoised for the duration of the call), so
// the cost is proportional to the component and its boundary rather than to
// the graph. keep(q) is assumed true and not consulted. The result is in
// BFS order, matching ComponentOf over the materialised set.
func (s *SetOps) ExpandComponentOf(q VertexID, keep func(VertexID) bool) []VertexID {
	s.in.Reset() // tested: accepted vertices are enqueued at test time
	s.in.Add(q)
	comp := []VertexID{q}
	for head := 0; head < len(comp); head++ {
		v := comp[head]
		s.check.Tick(1)
		for _, u := range s.g.Neighbors(v) {
			if s.in.Has(u) {
				continue
			}
			s.in.Add(u)
			if keep(u) {
				comp = append(comp, u)
			}
		}
	}
	return comp
}

// Components returns the connected components of the subgraph induced by
// cand, each in BFS order.
func (s *SetOps) Components(cand []VertexID) [][]VertexID {
	s.in.Reset()
	s.in.AddAll(cand)
	s.alive.Reset() // visited
	var comps [][]VertexID
	for _, start := range cand {
		if s.alive.Has(start) {
			continue
		}
		s.alive.Add(start)
		comp := []VertexID{start}
		for head := 0; head < len(comp); head++ {
			v := comp[head]
			s.check.Tick(1)
			for _, u := range s.g.Neighbors(v) {
				if s.in.Has(u) && !s.alive.Has(u) {
					s.alive.Add(u)
					comp = append(comp, u)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// PeelToMinDegree removes vertices of induced degree < k from cand until the
// remainder has minimum degree ≥ k, and returns the surviving vertices (order
// unspecified). This is the Gk[·] refinement step: the k-core of the induced
// subgraph.
func (s *SetOps) PeelToMinDegree(cand []VertexID, k int) []VertexID {
	s.alive.Reset()
	s.alive.AddAll(cand)
	for _, v := range cand {
		s.check.Tick(1)
		d := int32(0)
		for _, u := range s.g.Neighbors(v) {
			if s.alive.Has(u) {
				d++
			}
		}
		s.deg[v] = d
	}
	s.queue = s.queue[:0]
	for _, v := range cand {
		s.check.Tick(1)
		if s.deg[v] < int32(k) {
			s.queue = append(s.queue, v)
			s.alive.Remove(v)
		}
	}
	for head := 0; head < len(s.queue); head++ {
		v := s.queue[head]
		s.check.Tick(1)
		for _, u := range s.g.Neighbors(v) {
			if s.alive.Has(u) {
				s.deg[u]--
				if s.deg[u] < int32(k) {
					s.alive.Remove(u)
					s.queue = append(s.queue, u)
				}
			}
		}
	}
	out := make([]VertexID, 0, len(cand))
	for _, v := range cand {
		s.check.Tick(1)
		if s.alive.Has(v) {
			out = append(out, v)
		}
	}
	return out
}

// InducedEdgeCount returns the number of edges of the subgraph induced by
// cand (each edge counted once).
func (s *SetOps) InducedEdgeCount(cand []VertexID) int {
	s.in.Reset()
	s.in.AddAll(cand)
	total := 0
	for _, v := range cand {
		s.check.Tick(1)
		for _, u := range s.g.Neighbors(v) {
			if s.in.Has(u) {
				total++
			}
		}
	}
	return total / 2
}

// InducedDegrees returns the degree of every vertex of cand inside the
// subgraph induced by cand, parallel to cand.
func (s *SetOps) InducedDegrees(cand []VertexID) []int {
	s.in.Reset()
	s.in.AddAll(cand)
	out := make([]int, len(cand))
	for i, v := range cand {
		s.check.Tick(1)
		d := 0
		for _, u := range s.g.Neighbors(v) {
			if s.in.Has(u) {
				d++
			}
		}
		out[i] = d
	}
	return out
}

// FilterByKeywords returns the subset of cand whose keyword sets contain
// every keyword of set (sorted). The result preserves cand's order.
func (s *SetOps) FilterByKeywords(cand []VertexID, set []KeywordID) []VertexID {
	out := make([]VertexID, 0, len(cand))
	for _, v := range cand {
		s.check.Tick(1)
		if s.g.HasAllKeywords(v, set) {
			out = append(out, v)
		}
	}
	return out
}
