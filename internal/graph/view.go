package graph

// View is the read-only surface every community-search algorithm consumes.
// Three implementations exist:
//
//   - *Graph, the mutable slice-of-slices form the write path (builders,
//     incremental maintenance) operates on;
//   - *Frozen, the compact CSR form published to the serving read path,
//     where adjacency and keyword scans are sequential over two flat arrays;
//   - *Overlay, a small immutable delta of row overrides merged over a
//     Frozen base — the publication form of the LSM-style write path.
//
// Algorithms written against View run identically on either form — the
// differential tests in the public package assert byte-identical results for
// every query mode. Both implementations guarantee the representation
// invariants documented on Graph (sorted, duplicate-free adjacency and
// keyword lists; NumEdges counting each undirected edge once), so callers may
// binary-search and merge the returned slices directly.
//
// All returned slices are owned by the view and must not be modified.
type View interface {
	// NumVertices returns |V|.
	NumVertices() int
	// NumEdges returns |E| (each undirected edge counted once).
	NumEdges() int
	// Degree returns the degree of v.
	Degree(v VertexID) int
	// Neighbors returns the sorted adjacency list of v.
	Neighbors(v VertexID) []VertexID
	// Keywords returns the sorted keyword set W(v).
	Keywords(v VertexID) []KeywordID
	// Dict returns the keyword dictionary shared by all vertices.
	Dict() *Dict
	// Label returns the human-readable name of v ("" if none).
	Label(v VertexID) string
	// VertexByLabel resolves a vertex by its label.
	VertexByLabel(name string) (VertexID, bool)
	// KeywordStrings materialises W(v) as strings, in dictionary order.
	KeywordStrings(v VertexID) []string
	// HasEdge reports whether {u, v} is an edge.
	HasEdge(u, v VertexID) bool
	// HasKeyword reports whether w ∈ W(v).
	HasKeyword(v VertexID, w KeywordID) bool
	// HasAllKeywords reports whether set ⊆ W(v). set must be sorted.
	HasAllKeywords(v VertexID, set []KeywordID) bool
	// CountSharedKeywords returns |W(v) ∩ set|. set must be sorted.
	CountSharedKeywords(v VertexID, set []KeywordID) int
	// AvgKeywords returns the average keyword-set size l̂.
	AvgKeywords() float64
	// AvgDegree returns the average vertex degree d̂ = 2m/n.
	AvgDegree() float64
}

var (
	_ View = (*Graph)(nil)
	_ View = (*Frozen)(nil)
	_ View = (*Overlay)(nil)
)

// sorted keyword-set primitives shared by the View implementations.

// hasAllSorted reports whether set ⊆ kw; both must be sorted.
func hasAllSorted(kw, set []KeywordID) bool {
	i := 0
	for _, want := range set {
		for i < len(kw) && kw[i] < want {
			i++
		}
		if i == len(kw) || kw[i] != want {
			return false
		}
		i++
	}
	return true
}

// countSharedSorted returns |kw ∩ set|; both must be sorted.
func countSharedSorted(kw, set []KeywordID) int {
	n, i, j := 0, 0, 0
	for i < len(kw) && j < len(set) {
		switch {
		case kw[i] < set[j]:
			i++
		case kw[i] > set[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}
