// Package kcore implements the k-core machinery underlying attributed
// community search: the O(m) core-decomposition of Batagelj and Zaversnik
// (paper reference [2]), k-ĉore extraction, the Lemma 3 edge-count prune,
// and incremental core-number maintenance under edge insertions and
// deletions (paper Appendix F, following the traversal approach of
// reference [20]).
//
// Terminology follows the paper (Section 3): the k-core H_k is the largest
// subgraph with minimum degree ≥ k; its connected components are k-ĉores;
// core(v) is the largest k such that v ∈ H_k.
package kcore

import (
	"github.com/acq-search/acq/internal/graph"
	"github.com/acq-search/acq/internal/para"
)

// Decompose computes the core number of every vertex with the
// Batagelj–Zaversnik bucket algorithm in O(n + m) time.
func Decompose(g graph.View) []int32 { return DecomposeWorkers(g, 1) }

// DecomposeWorkers is Decompose with the initial per-vertex degree scan fanned
// out over the given number of workers (≤ 0 means one per CPU). The peeling
// phase itself is inherently sequential — each peel step depends on the
// previous one — so it stays serial; the result is identical to Decompose for
// any worker count.
func DecomposeWorkers(g graph.View, workers int) []int32 {
	n := g.NumVertices()
	deg := make([]int32, n)
	para.ForEachChunk(workers, n, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			deg[v] = int32(g.Degree(graph.VertexID(v)))
		}
	})
	maxDeg := int32(0)
	for v := 0; v < n; v++ {
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket sort vertices by degree.
	bin := make([]int32, maxDeg+2)
	for v := 0; v < n; v++ {
		bin[deg[v]]++
	}
	start := int32(0)
	for d := int32(0); d <= maxDeg; d++ {
		cnt := bin[d]
		bin[d] = start
		start += cnt
	}
	pos := make([]int32, n)  // position of vertex in vert
	vert := make([]int32, n) // vertices sorted by degree
	for v := 0; v < n; v++ {
		pos[v] = bin[deg[v]]
		vert[pos[v]] = int32(v)
		bin[deg[v]]++
	}
	// Restore bin starts.
	for d := maxDeg; d > 0; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0

	core := deg // peels in place: after the loop deg[v] is core(v)
	for i := 0; i < n; i++ {
		v := vert[i]
		for _, u := range g.Neighbors(graph.VertexID(v)) {
			if core[u] > core[v] {
				du := core[u]
				pu := pos[u]
				pw := bin[du]
				w := vert[pw]
				if u != graph.VertexID(w) {
					vert[pu], vert[pw] = w, int32(u)
					pos[u], pos[w] = pw, pu
				}
				bin[du]++
				core[u]--
			}
		}
	}
	return core
}

// MaxCore returns the maximum core number kmax (0 for an empty graph).
func MaxCore(core []int32) int32 {
	kmax := int32(0)
	for _, c := range core {
		if c > kmax {
			kmax = c
		}
	}
	return kmax
}

// CoreVertices returns all vertices with core number ≥ k, i.e. the vertex
// set of the k-core H_k.
func CoreVertices(core []int32, k int32) []graph.VertexID {
	out := make([]graph.VertexID, 0)
	for v, c := range core {
		if c >= k {
			out = append(out, graph.VertexID(v))
		}
	}
	return out
}

// KHatCore returns the k-ĉore containing q: the connected component of q in
// the subgraph induced by vertices of core number ≥ k. It returns nil when
// core(q) < k. ops must wrap the same graph the core numbers were computed
// on.
func KHatCore(ops *graph.SetOps, core []int32, q graph.VertexID, k int) []graph.VertexID {
	if int(core[q]) < k {
		return nil
	}
	return ops.ComponentOf(CoreVertices(core, int32(k)), q)
}

// KHatCoreScratch is KHatCore without the CoreVertices allocation pattern:
// it peels the whole graph to min degree k and takes q's component. It exists
// for the index-free baselines (basic-g/basic-w, Global), which by
// construction may not use precomputed core numbers.
func KHatCoreScratch(ops *graph.SetOps, q graph.VertexID, k int) []graph.VertexID {
	g := ops.Graph()
	all := make([]graph.VertexID, g.NumVertices())
	for v := range all {
		all[v] = graph.VertexID(v)
	}
	surv := ops.PeelToMinDegree(all, k)
	return ops.ComponentOf(surv, q)
}

// CanContainKCore applies Lemma 3 of the paper: a connected graph with n
// vertices and m edges can only contain a k-ĉore if m − n ≥ k(k−1)/2 − 1.
// It returns false when the prune applies (no k-ĉore possible).
func CanContainKCore(n, m, k int) bool {
	if n == 0 {
		return false
	}
	return m-n >= k*(k-1)/2-1
}
