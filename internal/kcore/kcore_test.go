package kcore

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/acq-search/acq/internal/graph"
	"github.com/acq-search/acq/internal/testutil"
)

func TestDecomposeFig3(t *testing.T) {
	g := testutil.Fig3Graph()
	core := Decompose(g)
	want := map[string]int32{
		"A": 3, "B": 3, "C": 3, "D": 3,
		"E": 2,
		"F": 1, "G": 1, "H": 1, "I": 1,
		"J": 0,
	}
	for name, c := range want {
		v, _ := g.VertexByLabel(name)
		if core[v] != c {
			t.Errorf("core(%s) = %d, want %d", name, core[v], c)
		}
	}
	if MaxCore(core) != 3 {
		t.Errorf("kmax = %d, want 3", MaxCore(core))
	}
}

func TestDecomposeFig5(t *testing.T) {
	g := testutil.Fig5Graph()
	core := Decompose(g)
	want := map[string]int32{
		"A": 3, "B": 3, "C": 3, "D": 3, "I": 3, "J": 3, "K": 3, "L": 3,
		"E": 2, "F": 2, "G": 2,
		"H": 1, "M": 1,
		"N": 0,
	}
	for name, c := range want {
		v, _ := g.VertexByLabel(name)
		if core[v] != c {
			t.Errorf("core(%s) = %d, want %d", name, core[v], c)
		}
	}
}

func TestDecomposeEdgeCases(t *testing.T) {
	b := graph.NewBuilder()
	g := b.MustBuild()
	if got := Decompose(g); len(got) != 0 {
		t.Fatalf("empty graph core = %v", got)
	}

	b = graph.NewBuilder()
	b.AddVertex("lonely")
	g = b.MustBuild()
	if got := Decompose(g); got[0] != 0 {
		t.Fatalf("isolated vertex core = %d", got[0])
	}

	// Clique of 6: everyone core 5.
	b = graph.NewBuilder()
	for i := 0; i < 6; i++ {
		b.AddVertex("")
	}
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			b.AddEdge(graph.VertexID(i), graph.VertexID(j))
		}
	}
	g = b.MustBuild()
	for v, c := range Decompose(g) {
		if c != 5 {
			t.Fatalf("clique core(%d) = %d, want 5", v, c)
		}
	}
}

// Property: Decompose agrees with the peeling definition — for every k, the
// vertices with core ≥ k are exactly the k-core fixpoint.
func TestDecomposeMatchesPeelingQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := testutil.RandomGraph(rng, 2+rng.Intn(50), 1+4*rng.Float64(), 10, 3)
		core := Decompose(g)
		ops := graph.NewSetOps(g)
		all := make([]graph.VertexID, g.NumVertices())
		for i := range all {
			all[i] = graph.VertexID(i)
		}
		for k := 0; k <= int(MaxCore(core))+1; k++ {
			want := map[graph.VertexID]bool{}
			for _, v := range ops.PeelToMinDegree(all, k) {
				want[v] = true
			}
			got := CoreVertices(core, int32(k))
			if len(got) != len(want) {
				return false
			}
			for _, v := range got {
				if !want[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: cores are nested — H_{k+1} ⊆ H_k (paper Section 3).
func TestCoreNestingQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := testutil.RandomGraph(rng, 2+rng.Intn(60), 1+5*rng.Float64(), 10, 3)
		core := Decompose(g)
		for k := int32(1); k <= MaxCore(core); k++ {
			inner := map[graph.VertexID]bool{}
			for _, v := range CoreVertices(core, k) {
				inner[v] = true
			}
			outerList := CoreVertices(core, k-1)
			outer := map[graph.VertexID]bool{}
			for _, v := range outerList {
				outer[v] = true
			}
			for v := range inner {
				if !outer[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestKHatCore(t *testing.T) {
	g := testutil.Fig3Graph()
	core := Decompose(g)
	ops := graph.NewSetOps(g)
	a, _ := g.VertexByLabel("A")
	h, _ := g.VertexByLabel("H")
	j, _ := g.VertexByLabel("J")

	got := testutil.LabelSet(g, KHatCore(ops, core, a, 1))
	for _, name := range []string{"A", "B", "C", "D", "E", "F", "G"} {
		if !got[name] {
			t.Fatalf("1-ĉore of A = %v, missing %s", got, name)
		}
	}
	if got["H"] || got["J"] {
		t.Fatalf("1-ĉore of A leaked: %v", got)
	}

	got = testutil.LabelSet(g, KHatCore(ops, core, h, 1))
	if len(got) != 2 || !got["H"] || !got["I"] {
		t.Fatalf("1-ĉore of H = %v", got)
	}

	if KHatCore(ops, core, j, 1) != nil {
		t.Fatal("J has no 1-ĉore")
	}
	if KHatCore(ops, core, a, 4) != nil {
		t.Fatal("no 4-ĉore exists")
	}

	scratch := KHatCoreScratch(ops, a, 3)
	if len(scratch) != 4 {
		t.Fatalf("scratch 3-ĉore = %v", testutil.LabelSet(g, scratch))
	}
}

func TestCanContainKCore(t *testing.T) {
	// A k-ĉore needs ≥ k+1 vertices and (k+1)k/2 edges; Lemma 3 states the
	// connected-graph bound m − n ≥ k(k−1)/2 − 1.
	if CanContainKCore(0, 0, 3) {
		t.Fatal("empty graph cannot contain a core")
	}
	// Triangle: n=3, m=3 → can contain 2-core (it is one).
	if !CanContainKCore(3, 3, 2) {
		t.Fatal("triangle must pass for k=2")
	}
	// Path of 4: n=4, m=3 → cannot contain a 2-core: m-n = -1 < 0 = 2·1/2-1.
	if CanContainKCore(4, 3, 2) {
		t.Fatal("path must be pruned for k=2")
	}
	// K5 minus nothing: n=5, m=10, k=4: m-n=5 ≥ 4·3/2-1=5 → allowed.
	if !CanContainKCore(5, 10, 4) {
		t.Fatal("K5 must pass for k=4")
	}
}

// Property: Lemma 3 is sound — whenever the prune fires on a connected
// subgraph, peeling really finds no k-core.
func TestLemma3SoundnessQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := testutil.RandomGraph(rng, 2+rng.Intn(40), 1+3*rng.Float64(), 10, 3)
		ops := graph.NewSetOps(g)
		all := make([]graph.VertexID, g.NumVertices())
		for i := range all {
			all[i] = graph.VertexID(i)
		}
		k := 2 + rng.Intn(3)
		for _, comp := range ops.Components(all) {
			m := ops.InducedEdgeCount(comp)
			if !CanContainKCore(len(comp), m, k) {
				if len(ops.PeelToMinDegree(comp, k)) != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: the parallel degree scan changes nothing — DecomposeWorkers must
// return exactly Decompose's core numbers at every worker count.
func TestDecomposeWorkersIdenticalQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := testutil.RandomGraph(rng, 2+rng.Intn(200), 1+4*rng.Float64(), 10, 3)
		want := Decompose(g)
		for _, workers := range []int{2, 8, 0} {
			if got := DecomposeWorkers(g, workers); !reflect.DeepEqual(got, want) {
				t.Logf("seed %d workers %d: core numbers differ", seed, workers)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
