package kcore

import "github.com/acq-search/acq/internal/graph"

// Maintainer keeps a core-number array consistent with a mutating graph,
// implementing the incremental maintenance sketched in Appendix F of the
// paper (after reference [20]): when edge (u, v) is inserted or removed,
// only vertices with core number c = min(core(u), core(v)) that are
// reachable from the endpoints through vertices of core number exactly c
// (the "purecore") can change, and by at most one.
type Maintainer struct {
	g    *graph.Graph
	core []int32
	ops  *graph.SetOps

	seen    *graph.Marker
	evicted *graph.Marker
	cd      []int32
	stack   []graph.VertexID
}

// NewMaintainer wraps g, computing the initial decomposition.
func NewMaintainer(g *graph.Graph) *Maintainer {
	return &Maintainer{
		g:    g,
		core: Decompose(g),
		ops:  graph.NewSetOps(g),
		seen: graph.NewMarker(g.NumVertices()),
		cd:   make([]int32, g.NumVertices()),
	}
}

// Core returns the maintained core numbers. The slice aliases internal state
// and is only valid until the next mutation.
func (mt *Maintainer) Core() []int32 { return mt.core }

// Graph returns the underlying graph.
func (mt *Maintainer) Graph() *graph.Graph { return mt.g }

// InsertEdge inserts {u, v} into the graph and updates core numbers. It
// returns the vertices whose core number changed (each increased by one),
// or nil when the edge already existed.
func (mt *Maintainer) InsertEdge(u, v graph.VertexID) []graph.VertexID {
	//acqvet:allow viewpurity — the k-core maintainer is the designated writer for its master graph
	if !mt.g.InsertEdge(u, v) {
		return nil
	}
	root := u
	if mt.core[v] < mt.core[u] {
		root = v
	}
	c := mt.core[root]
	pure := mt.purecore(root, c)
	// cd(w): neighbors that could support w in a (c+1)-core, i.e. neighbors
	// with core > c plus purecore members (all core == c neighbors of a
	// purecore member are themselves in the purecore, by closure).
	for _, w := range pure {
		d := int32(0)
		for _, x := range mt.g.Neighbors(w) {
			if mt.core[x] >= c {
				d++
			}
		}
		mt.cd[w] = d
	}
	// Peel: a vertex with cd ≤ c cannot reach core c+1.
	mt.stack = mt.stack[:0]
	evicted := mt.evictMarker()
	for _, w := range pure {
		if mt.cd[w] <= c {
			mt.stack = append(mt.stack, w)
			evicted.Add(w)
		}
	}
	for head := 0; head < len(mt.stack); head++ {
		w := mt.stack[head]
		for _, x := range mt.g.Neighbors(w) {
			if mt.core[x] == c && mt.seen.Has(x) && !evicted.Has(x) {
				mt.cd[x]--
				if mt.cd[x] <= c {
					evicted.Add(x)
					mt.stack = append(mt.stack, x)
				}
			}
		}
	}
	var changed []graph.VertexID
	for _, w := range pure {
		if !evicted.Has(w) {
			mt.core[w] = c + 1
			changed = append(changed, w)
		}
	}
	return changed
}

// RemoveEdge removes {u, v} from the graph and updates core numbers. It
// returns the vertices whose core number changed (each decreased by one),
// or nil when the edge did not exist.
func (mt *Maintainer) RemoveEdge(u, v graph.VertexID) []graph.VertexID {
	//acqvet:allow viewpurity — the k-core maintainer is the designated writer for its master graph
	if !mt.g.RemoveEdge(u, v) {
		return nil
	}
	c := mt.core[u]
	if mt.core[v] < c {
		c = mt.core[v]
	}
	// Collect the purecores of both endpoints (post-removal graph).
	mt.seen.Reset()
	var pure []graph.VertexID
	for _, r := range []graph.VertexID{u, v} {
		if mt.core[r] != c || mt.seen.Has(r) {
			continue
		}
		mt.seen.Add(r)
		start := len(pure)
		pure = append(pure, r)
		for head := start; head < len(pure); head++ {
			w := pure[head]
			for _, x := range mt.g.Neighbors(w) {
				if mt.core[x] == c && !mt.seen.Has(x) {
					mt.seen.Add(x)
					pure = append(pure, x)
				}
			}
		}
	}
	if len(pure) == 0 {
		return nil
	}
	for _, w := range pure {
		d := int32(0)
		for _, x := range mt.g.Neighbors(w) {
			if mt.core[x] >= c {
				d++
			}
		}
		mt.cd[w] = d
	}
	mt.stack = mt.stack[:0]
	evicted := mt.evictMarker()
	for _, w := range pure {
		if mt.cd[w] < c {
			mt.stack = append(mt.stack, w)
			evicted.Add(w)
		}
	}
	for head := 0; head < len(mt.stack); head++ {
		w := mt.stack[head]
		for _, x := range mt.g.Neighbors(w) {
			if mt.core[x] == c && mt.seen.Has(x) && !evicted.Has(x) {
				mt.cd[x]--
				if mt.cd[x] < c {
					evicted.Add(x)
					mt.stack = append(mt.stack, x)
				}
			}
		}
	}
	var changed []graph.VertexID
	for _, w := range pure {
		if evicted.Has(w) {
			mt.core[w] = c - 1
			changed = append(changed, w)
		}
	}
	return changed
}

// purecore returns the vertices of core number exactly c reachable from root
// through vertices of core number c, marking them in mt.seen.
func (mt *Maintainer) purecore(root graph.VertexID, c int32) []graph.VertexID {
	mt.seen.Reset()
	if mt.core[root] != c {
		return nil
	}
	mt.seen.Add(root)
	pure := []graph.VertexID{root}
	for head := 0; head < len(pure); head++ {
		w := pure[head]
		for _, x := range mt.g.Neighbors(w) {
			if mt.core[x] == c && !mt.seen.Has(x) {
				mt.seen.Add(x)
				pure = append(pure, x)
			}
		}
	}
	return pure
}

func (mt *Maintainer) evictMarker() *graph.Marker {
	if mt.evicted == nil {
		mt.evicted = graph.NewMarker(mt.g.NumVertices())
	}
	mt.evicted.Grow(mt.g.NumVertices())
	mt.evicted.Reset()
	return mt.evicted
}
