package kcore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/acq-search/acq/internal/graph"
	"github.com/acq-search/acq/internal/testutil"
)

func coresEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestMaintainerInsertSimple(t *testing.T) {
	// Path a-b-c: all core 1. Closing the triangle raises everyone to 2.
	b := graph.NewBuilder()
	b.AddVertex("a")
	b.AddVertex("b")
	b.AddVertex("c")
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.MustBuild()
	mt := NewMaintainer(g)
	changed := mt.InsertEdge(0, 2)
	if len(changed) != 3 {
		t.Fatalf("changed = %v, want all three", changed)
	}
	if !coresEqual(mt.Core(), []int32{2, 2, 2}) {
		t.Fatalf("cores = %v", mt.Core())
	}
	// Removing it again drops everyone back to 1.
	changed = mt.RemoveEdge(0, 2)
	if len(changed) != 3 {
		t.Fatalf("changed = %v, want all three", changed)
	}
	if !coresEqual(mt.Core(), []int32{1, 1, 1}) {
		t.Fatalf("cores = %v", mt.Core())
	}
}

func TestMaintainerRejectsDuplicates(t *testing.T) {
	b := graph.NewBuilder()
	b.AddVertex("a")
	b.AddVertex("b")
	b.AddEdge(0, 1)
	mt := NewMaintainer(b.MustBuild())
	if got := mt.InsertEdge(0, 1); got != nil {
		t.Fatalf("duplicate insert changed %v", got)
	}
	if got := mt.InsertEdge(0, 0); got != nil {
		t.Fatalf("self-loop insert changed %v", got)
	}
	if got := mt.RemoveEdge(1, 0); got != nil && len(got) != 0 {
		// Removal succeeded (edge existed); change list may be empty.
		t.Logf("changed %v", got)
	}
	if mt.Graph().NumEdges() != 0 {
		t.Fatal("edge not removed")
	}
	if got := mt.RemoveEdge(0, 1); got != nil {
		t.Fatalf("double remove changed %v", got)
	}
}

// Property: a maintained decomposition equals recomputation from scratch
// after any interleaved sequence of edge insertions and removals.
func TestMaintainerMatchesRecomputeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		g := testutil.RandomGraph(rng, n, 1+3*rng.Float64(), 8, 2)
		mt := NewMaintainer(g)
		for step := 0; step < 40; step++ {
			u := graph.VertexID(rng.Intn(n))
			v := graph.VertexID(rng.Intn(n))
			if rng.Intn(2) == 0 {
				mt.InsertEdge(u, v)
			} else {
				mt.RemoveEdge(u, v)
			}
			if !coresEqual(mt.Core(), Decompose(g)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: insertions only ever raise core numbers (by ≤ 1), deletions only
// lower them (by ≤ 1) — reference [20]'s locality result.
func TestMaintainerChangeBoundsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		g := testutil.RandomGraph(rng, n, 1+3*rng.Float64(), 8, 2)
		mt := NewMaintainer(g)
		for step := 0; step < 25; step++ {
			before := append([]int32(nil), mt.Core()...)
			u := graph.VertexID(rng.Intn(n))
			v := graph.VertexID(rng.Intn(n))
			insert := rng.Intn(2) == 0
			var changed []graph.VertexID
			if insert {
				changed = mt.InsertEdge(u, v)
			} else {
				changed = mt.RemoveEdge(u, v)
			}
			after := mt.Core()
			seen := map[graph.VertexID]bool{}
			for _, w := range changed {
				seen[w] = true
			}
			for i := range after {
				delta := after[i] - before[i]
				switch {
				case delta == 0:
					if seen[graph.VertexID(i)] {
						return false // reported a non-change
					}
				case insert && delta == 1, !insert && delta == -1:
					if !seen[graph.VertexID(i)] {
						return false // unreported change
					}
				default:
					return false // jumped by more than one or wrong direction
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
