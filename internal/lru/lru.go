// Package lru provides a small, concurrency-safe, bounded LRU cache. It backs
// the per-snapshot query-result cache of the public acq package: each
// published index snapshot carries one cache, so cached results can never
// outlive the graph version they were computed on.
package lru

import "sync"

// Cache is a bounded least-recently-used cache safe for concurrent use.
// The zero value is not usable; call New.
type Cache[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	items    map[K]*entry[K, V]
	// Intrusive doubly-linked list, head = most recently used. Sentinel-free:
	// head/tail are nil when empty.
	head, tail *entry[K, V]
}

type entry[K comparable, V any] struct {
	key        K
	val        V
	prev, next *entry[K, V]
}

// New returns an empty cache evicting beyond capacity entries. Capacity must
// be positive.
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity <= 0 {
		panic("lru: capacity must be positive")
	}
	return &Cache[K, V]{
		capacity: capacity,
		items:    make(map[K]*entry[K, V], capacity),
	}
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.moveToFront(e)
	return e.val, true
}

// Put stores value under key, evicting the least recently used entry when the
// cache is full.
func (c *Cache[K, V]) Put(key K, value V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		e.val = value
		c.moveToFront(e)
		return
	}
	if len(c.items) >= c.capacity {
		lru := c.tail
		c.unlink(lru)
		delete(c.items, lru.key)
	}
	e := &entry[K, V]{key: key, val: value}
	c.items[key] = e
	c.pushFront(e)
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

func (c *Cache[K, V]) moveToFront(e *entry[K, V]) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *Cache[K, V]) pushFront(e *entry[K, V]) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache[K, V]) unlink(e *entry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// numShards is the shard count of ShardedCache — a fixed power of two, large
// enough that parallel readers rarely collide on one shard's mutex.
const numShards = 16

// ShardedCache is a string-keyed LRU split across fixed shards so that
// parallel readers contend on per-shard mutexes instead of one global lock.
// Recency is tracked per shard; total capacity is divided evenly, so
// eviction is approximate LRU (exact within each shard).
type ShardedCache[V any] struct {
	shards [numShards]*Cache[string, V]
}

// NewSharded returns an empty sharded cache bounding roughly capacity
// entries in total. Capacity must be positive.
func NewSharded[V any](capacity int) *ShardedCache[V] {
	if capacity <= 0 {
		panic("lru: capacity must be positive")
	}
	per := (capacity + numShards - 1) / numShards
	c := &ShardedCache[V]{}
	for i := range c.shards {
		c.shards[i] = New[string, V](per)
	}
	return c
}

// shard maps a key to its shard by FNV-1a hash.
func (c *ShardedCache[V]) shard(key string) *Cache[string, V] {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return c.shards[h%numShards]
}

// Get returns the cached value for key, marking it most recently used in
// its shard.
func (c *ShardedCache[V]) Get(key string) (V, bool) { return c.shard(key).Get(key) }

// Put stores value under key, evicting within the key's shard when full.
func (c *ShardedCache[V]) Put(key string, value V) { c.shard(key).Put(key, value) }

// Len returns the total number of cached entries.
func (c *ShardedCache[V]) Len() int {
	n := 0
	for _, s := range c.shards {
		n += s.Len()
	}
	return n
}
