package lru

import (
	"fmt"
	"sync"
	"testing"
)

func TestEvictionOrder(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok { // a becomes MRU
		t.Fatal("a missing")
	}
	c.Put("c", 3) // evicts b, the LRU
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("a = %d, %v", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Fatalf("c = %d, %v", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestPutUpdatesExisting(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("a", 9)
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
	if v, _ := c.Get("a"); v != 9 {
		t.Fatalf("a = %d", v)
	}
}

func TestSingleCapacity(t *testing.T) {
	c := New[int, int](1)
	for i := 0; i < 10; i++ {
		c.Put(i, i)
		if v, ok := c.Get(i); !ok || v != i {
			t.Fatalf("get %d = %d, %v", i, v, ok)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New[int, int](0)
}

func TestShardedBasics(t *testing.T) {
	c := NewSharded[int](64)
	for i := 0; i < 200; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	if c.Len() > 64+16 { // per-shard rounding can exceed capacity slightly
		t.Fatalf("len = %d, want ≤ 80", c.Len())
	}
	c.Put("stable", 7)
	if v, ok := c.Get("stable"); !ok || v != 7 {
		t.Fatalf("stable = %d, %v", v, ok)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewSharded(0) did not panic")
		}
	}()
	NewSharded[int](0)
}

func TestShardedConcurrent(t *testing.T) {
	c := NewSharded[int](64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (w*13+i)%96)
				c.Put(k, i)
				c.Get(k)
			}
		}(w)
	}
	wg.Wait()
}

// TestConcurrent exercises the cache from many goroutines; run with -race.
func TestConcurrent(t *testing.T) {
	c := New[string, int](32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (w*31+i)%64)
				c.Put(k, i)
				c.Get(k)
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 32 {
		t.Fatalf("len = %d exceeds capacity", c.Len())
	}
}
