// Package measure implements the community-quality metrics of the paper's
// Section 7.2: CMF (community member frequency, Eq. 3), CPJ (community
// pair-wise Jaccard, Eq. 4), MF (per-keyword member frequency, Section
// 7.2.2), and the structural statistics used in Figure 8 (average degree and
// the fraction of members with degree ≥ k inside the community).
package measure

import (
	"sort"

	"github.com/acq-search/acq/internal/graph"
)

// CMF computes the community member frequency of Eq. 3 for a set of
// communities returned for query vertex q: the relative occurrence frequency
// of q's keywords among community members, averaged over all keywords of
// W(q) and all communities. Result is in [0, 1]; higher is more cohesive.
func CMF(g graph.View, q graph.VertexID, communities [][]graph.VertexID) float64 {
	wq := g.Keywords(q)
	if len(wq) == 0 || len(communities) == 0 {
		return 0
	}
	total := 0.0
	for _, c := range communities {
		if len(c) == 0 {
			continue
		}
		for _, w := range wq {
			cnt := 0
			for _, v := range c {
				if g.HasKeyword(v, w) {
					cnt++
				}
			}
			total += float64(cnt) / float64(len(c))
		}
	}
	return total / (float64(len(communities)) * float64(len(wq)))
}

// CPJ computes the community pair-wise Jaccard of Eq. 4: the Jaccard
// similarity of member keyword sets averaged over all ordered member pairs
// (self-pairs included, matching the paper's 1/|Ci|² normalisation) and over
// all communities. Communities larger than maxExact members are estimated
// from a deterministic sample of pairs; pass 0 for the default (2000).
func CPJ(g graph.View, communities [][]graph.VertexID, maxExact int) float64 {
	if len(communities) == 0 {
		return 0
	}
	if maxExact <= 0 {
		maxExact = 2000
	}
	total := 0.0
	for _, c := range communities {
		total += cpjOne(g, c, maxExact)
	}
	return total / float64(len(communities))
}

func cpjOne(g graph.View, c []graph.VertexID, maxExact int) float64 {
	n := len(c)
	if n == 0 {
		return 0
	}
	if n <= maxExact {
		sum := 0.0
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				sum += keywordJaccard(g, c[i], c[j])
			}
		}
		return sum / float64(n*n)
	}
	// Deterministic sample: a fixed linear-congruential stream over pairs.
	const samples = 20000
	sum := 0.0
	state := uint64(0x9E3779B97F4A7C15)
	for s := 0; s < samples; s++ {
		state = state*6364136223846793005 + 1442695040888963407
		i := int((state >> 33) % uint64(n))
		state = state*6364136223846793005 + 1442695040888963407
		j := int((state >> 33) % uint64(n))
		sum += keywordJaccard(g, c[i], c[j])
	}
	return sum / samples
}

func keywordJaccard(g graph.View, a, b graph.VertexID) float64 {
	wa, wb := g.Keywords(a), g.Keywords(b)
	if len(wa) == 0 && len(wb) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(wa) && j < len(wb) {
		switch {
		case wa[i] < wb[j]:
			i++
		case wa[i] > wb[j]:
			j++
		default:
			inter++
			i++
			j++
		}
	}
	return float64(inter) / float64(len(wa)+len(wb)-inter)
}

// MF computes the member frequency of keyword w over a set of communities
// (Section 7.2.2): the fraction of members containing w, averaged across
// communities.
func MF(g graph.View, w graph.KeywordID, communities [][]graph.VertexID) float64 {
	if len(communities) == 0 {
		return 0
	}
	total := 0.0
	for _, c := range communities {
		if len(c) == 0 {
			continue
		}
		cnt := 0
		for _, v := range c {
			if g.HasKeyword(v, w) {
				cnt++
			}
		}
		total += float64(cnt) / float64(len(c))
	}
	return total / float64(len(communities))
}

// KeywordMF pairs a keyword with its member frequency.
type KeywordMF struct {
	Keyword graph.KeywordID
	MF      float64
}

// TopKeywordsByMF returns the top (at most) limit keywords appearing in the
// communities, ranked by member frequency descending (ties by keyword ID).
// This is the ranking behind Figure 11 and Tables 5/6.
func TopKeywordsByMF(g graph.View, communities [][]graph.VertexID, limit int) []KeywordMF {
	counts := map[graph.KeywordID]float64{}
	for _, c := range communities {
		if len(c) == 0 {
			continue
		}
		local := map[graph.KeywordID]int{}
		for _, v := range c {
			for _, w := range g.Keywords(v) {
				local[w]++
			}
		}
		for w, cnt := range local {
			counts[w] += float64(cnt) / float64(len(c)) / float64(len(communities))
		}
	}
	out := make([]KeywordMF, 0, len(counts))
	for w, mf := range counts {
		out = append(out, KeywordMF{Keyword: w, MF: mf})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MF != out[j].MF {
			return out[i].MF > out[j].MF
		}
		return out[i].Keyword < out[j].Keyword
	})
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}

// DistinctKeywords counts the distinct keywords appearing across the members
// of all communities (Table 4).
func DistinctKeywords(g graph.View, communities [][]graph.VertexID) int {
	seen := map[graph.KeywordID]bool{}
	for _, c := range communities {
		for _, v := range c {
			for _, w := range g.Keywords(v) {
				seen[w] = true
			}
		}
	}
	return len(seen)
}

// AvgInducedDegree returns the average member degree inside the community
// (Figure 8c).
func AvgInducedDegree(ops *graph.SetOps, c []graph.VertexID) float64 {
	if len(c) == 0 {
		return 0
	}
	total := 0
	for _, d := range ops.InducedDegrees(c) {
		total += d
	}
	return float64(total) / float64(len(c))
}

// FracDegreeAtLeast returns the fraction of members whose degree inside the
// community is ≥ k (Figure 8d).
func FracDegreeAtLeast(ops *graph.SetOps, c []graph.VertexID, k int) float64 {
	if len(c) == 0 {
		return 0
	}
	cnt := 0
	for _, d := range ops.InducedDegrees(c) {
		if d >= k {
			cnt++
		}
	}
	return float64(cnt) / float64(len(c))
}

// AvgSize returns the mean community size.
func AvgSize(communities [][]graph.VertexID) float64 {
	if len(communities) == 0 {
		return 0
	}
	total := 0
	for _, c := range communities {
		total += len(c)
	}
	return float64(total) / float64(len(communities))
}
