package measure

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/acq-search/acq/internal/graph"
	"github.com/acq-search/acq/internal/testutil"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestCMF(t *testing.T) {
	g := testutil.Fig3Graph()
	a, _ := g.VertexByLabel("A") // W(A) = {w, x, y}
	c, _ := g.VertexByLabel("C")
	d, _ := g.VertexByLabel("D")
	comm := [][]graph.VertexID{{a, c, d}}
	// Frequencies among {A,C,D}: w: 1/3, x: 3/3, y: 3/3 → mean 7/9.
	if got := CMF(g, a, comm); !approx(got, 7.0/9.0) {
		t.Fatalf("CMF = %v, want 7/9", got)
	}
	if got := CMF(g, a, nil); got != 0 {
		t.Fatalf("CMF with no communities = %v", got)
	}
}

func TestCPJ(t *testing.T) {
	g := testutil.Fig3Graph()
	a, _ := g.VertexByLabel("A") // {w,x,y}
	b, _ := g.VertexByLabel("B") // {x}
	// Pairs (ordered, with self-pairs): AA=1, BB=1, AB=BA=1/3 → mean = (1+1+2/3)/4 = 2/3.
	if got := CPJ(g, [][]graph.VertexID{{a, b}}, 0); !approx(got, 2.0/3.0) {
		t.Fatalf("CPJ = %v, want 2/3", got)
	}
	// Sampled path stays within a few percent of exact on a bigger set.
	vs := make([]graph.VertexID, 0, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		vs = append(vs, graph.VertexID(v))
	}
	exact := CPJ(g, [][]graph.VertexID{vs}, len(vs))
	sampled := CPJ(g, [][]graph.VertexID{vs}, 2)
	if math.Abs(exact-sampled) > 0.05 {
		t.Fatalf("sampled CPJ %v too far from exact %v", sampled, exact)
	}
}

func TestMFAndTopKeywords(t *testing.T) {
	g := testutil.Fig3Graph()
	a, _ := g.VertexByLabel("A")
	c, _ := g.VertexByLabel("C")
	d, _ := g.VertexByLabel("D")
	comm := [][]graph.VertexID{{a, c, d}}
	x, _ := g.Dict().Lookup("x")
	w, _ := g.Dict().Lookup("w")
	if got := MF(g, x, comm); !approx(got, 1) {
		t.Fatalf("MF(x) = %v", got)
	}
	if got := MF(g, w, comm); !approx(got, 1.0/3.0) {
		t.Fatalf("MF(w) = %v", got)
	}
	top := TopKeywordsByMF(g, comm, 2)
	if len(top) != 2 || !approx(top[0].MF, 1) || !approx(top[1].MF, 1) {
		t.Fatalf("top = %+v", top)
	}
	if got := TopKeywordsByMF(g, comm, 100); len(got) != 4 {
		t.Fatalf("all keywords = %+v", got)
	}
}

func TestDistinctKeywords(t *testing.T) {
	g := testutil.Fig3Graph()
	a, _ := g.VertexByLabel("A")
	b, _ := g.VertexByLabel("B")
	if got := DistinctKeywords(g, [][]graph.VertexID{{a, b}}); got != 3 {
		t.Fatalf("distinct = %d, want 3 ({w,x,y})", got)
	}
	if got := DistinctKeywords(g, nil); got != 0 {
		t.Fatalf("distinct(nil) = %d", got)
	}
}

func TestStructuralMetrics(t *testing.T) {
	g := testutil.Fig3Graph()
	ops := graph.NewSetOps(g)
	abcd := testutil.Labels(g, "A", "B", "C", "D")
	if got := AvgInducedDegree(ops, abcd); !approx(got, 3) {
		t.Fatalf("avg degree = %v", got)
	}
	if got := FracDegreeAtLeast(ops, abcd, 3); !approx(got, 1) {
		t.Fatalf("frac = %v", got)
	}
	if got := FracDegreeAtLeast(ops, abcd, 4); !approx(got, 0) {
		t.Fatalf("frac = %v", got)
	}
	if got := AvgSize([][]graph.VertexID{abcd, abcd[:2]}); !approx(got, 3) {
		t.Fatalf("avg size = %v", got)
	}
}

// Property: CMF, CPJ and MF always land in [0, 1].
func TestMetricRangesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := testutil.RandomGraph(rng, 3+rng.Intn(40), 1+3*rng.Float64(), 8, 4)
		var comm []graph.VertexID
		for v := 0; v < g.NumVertices(); v += 1 + rng.Intn(3) {
			comm = append(comm, graph.VertexID(v))
		}
		comms := [][]graph.VertexID{comm}
		q := graph.VertexID(rng.Intn(g.NumVertices()))
		cmf := CMF(g, q, comms)
		cpj := CPJ(g, comms, 0)
		if cmf < 0 || cmf > 1 || cpj < 0 || cpj > 1 {
			return false
		}
		if g.Dict().Size() > 0 {
			mf := MF(g, graph.KeywordID(rng.Intn(g.Dict().Size())), comms)
			if mf < 0 || mf > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
