// Package para provides the bounded parallel-execution primitives shared by
// the index-construction pipeline and the batch serving path: GOMAXPROCS-aware
// worker resolution, static chunked fan-out for evenly sized work, and a
// channel-fed pool for uneven work items (CL-tree nodes, batch queries).
//
// Every primitive is deterministic in the sense that matters for the parallel
// CL-tree build: each index in [0, n) is handed to exactly one worker, chunk
// boundaries depend only on n and the resolved worker count, and callers write
// results into per-index slots — so the merged output is identical to a serial
// run regardless of goroutine scheduling. With one resolved worker every
// primitive runs inline on the calling goroutine, so small inputs pay no
// goroutine or channel overhead.
package para

import (
	"runtime"
	"sync"
)

// Workers resolves a requested worker count against the machine and the work
// size: requested ≤ 0 means one worker per schedulable CPU (GOMAXPROCS), and
// the result never exceeds n when n ≥ 1, so no worker is ever spawned without
// work. The result is always ≥ 1.
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if n >= 1 && w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEachChunk splits [0, n) into one contiguous chunk per resolved worker and
// runs fn(lo, hi) on each chunk concurrently, returning when all chunks are
// done. fn must confine its writes to state owned by indices in [lo, hi).
func ForEachChunk(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers, n)
	if w == 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		lo, hi := i*n/w, (i+1)*n/w
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(lo, hi)
		}()
	}
	wg.Wait()
}

// ForEach runs fn(i) for every i in [0, n) using static chunking. Suited to
// items of comparable cost (per-vertex scans); for items of wildly uneven
// cost, use Dynamic.
func ForEach(workers, n int, fn func(i int)) {
	ForEachChunk(workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Dynamic runs fn(i) for every i in [0, n), feeding indices to a bounded
// worker pool one at a time so a few expensive items (a huge CL-tree node, a
// slow query) cannot strand the rest of the batch behind one worker.
func Dynamic(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
