package para

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	cpus := runtime.GOMAXPROCS(0)
	cases := []struct {
		requested, n, want int
	}{
		{0, 100000, cpus},
		{-5, 100000, cpus},
		{4, 100000, 4},
		{4, 2, 2},    // capped at the work size
		{0, 0, cpus}, // n < 1 leaves the CPU default
		{8, -1, 8},   // negative n leaves the request
		{1, 100, 1},
	}
	for _, c := range cases {
		if got := Workers(c.requested, c.n); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.requested, c.n, got, c.want)
		}
	}
}

// each checks that a fan-out primitive visits every index exactly once and
// waits for all work before returning.
func each(t *testing.T, name string, run func(workers, n int, fn func(i int))) {
	t.Helper()
	for _, workers := range []int{1, 2, 3, 8, 0} {
		for _, n := range []int{0, 1, 2, 7, 100, 1001} {
			counts := make([]int32, n)
			run(workers, n, func(i int) { atomic.AddInt32(&counts[i], 1) })
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("%s(workers=%d, n=%d): index %d visited %d times", name, workers, n, i, c)
				}
			}
		}
	}
}

func TestForEach(t *testing.T) { each(t, "ForEach", ForEach) }
func TestDynamic(t *testing.T) { each(t, "Dynamic", Dynamic) }

func TestForEachChunk(t *testing.T) {
	each(t, "ForEachChunk", func(workers, n int, fn func(i int)) {
		ForEachChunk(workers, n, func(lo, hi int) {
			if lo > hi || lo < 0 || hi > n {
				t.Errorf("bad chunk [%d, %d) for n=%d", lo, hi, n)
			}
			for i := lo; i < hi; i++ {
				fn(i)
			}
		})
	})
}

// TestChunksDeterministic pins the chunk-boundary contract: boundaries depend
// only on (n, resolved workers), so two runs fan identical index ranges out.
func TestChunksDeterministic(t *testing.T) {
	collect := func() map[int]int {
		bounds := map[int]int{}
		ch := make(chan [2]int, 8)
		ForEachChunk(4, 103, func(lo, hi int) { ch <- [2]int{lo, hi} })
		close(ch)
		for b := range ch {
			bounds[b[0]] = b[1]
		}
		return bounds
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatalf("chunk count differs between runs: %d vs %d", len(a), len(b))
	}
	for lo, hi := range a {
		if b[lo] != hi {
			t.Fatalf("chunk [%d,%d) missing or different in second run", lo, hi)
		}
	}
}
