package replica

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// Client polls one leader's /v1/replication/* endpoints. All methods except
// the getters block on network I/O (the lockio analyzer enforces that they
// are never called under a held mutex).
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the leader at base (e.g.
// "http://leader:8475"). A nil hc gets a dedicated client with a 30s
// end-to-end timeout — long enough for a large snapshot chunk, short enough
// that a wedged leader cannot hang a follower's sync loop forever.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// BaseURL reports the leader URL the client polls (in-memory getter).
func (c *Client) BaseURL() string { return c.base }

// get issues one GET against the leader and rejects non-200 statuses with
// the response body in the error (the leader's structured error envelope is
// more useful than a bare status code).
func (c *Client) get(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		return nil, fmt.Errorf("replica: leader %s%s: %s: %s", c.base, path, resp.Status, strings.TrimSpace(string(body)))
	}
	return resp, nil
}

// Collections lists the leader's replicable (durable) collections.
func (c *Client) Collections(ctx context.Context) ([]CollectionInfo, error) {
	resp, err := c.get(ctx, "/v1/replication/collections")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var body struct {
		Collections []CollectionInfo `json:"collections"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("replica: decoding collection listing: %w", err)
	}
	return body.Collections, nil
}

// FetchSnapshot downloads the named collection's current snapshot blob into
// dstPath (atomically: a staging file replaced by rename, so a crashed or
// cancelled download never leaves a half-written snapshot under the real
// name) and returns the graph version the blob captures.
func (c *Client) FetchSnapshot(ctx context.Context, name, dstPath string) (uint64, error) {
	resp, err := c.get(ctx, "/v1/replication/collections/"+url.PathEscape(name)+"/snapshot")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	version, err := strconv.ParseUint(resp.Header.Get(VersionHeader), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("replica: snapshot response missing %s: %w", VersionHeader, err)
	}
	tmp := dstPath + ".dl"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	if _, err := io.Copy(f, resp.Body); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("replica: downloading snapshot %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, dstPath); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return version, nil
}

// Tail fetches the effective-mutation batches after version from for the
// named collection. maxOps <= 0 leaves the cap to the leader.
func (c *Client) Tail(ctx context.Context, name string, from uint64, maxOps int) (*TailResponse, error) {
	path := fmt.Sprintf("/v1/replication/collections/%s/tail?from=%d", url.PathEscape(name), from)
	if maxOps > 0 {
		path += fmt.Sprintf("&max_ops=%d", maxOps)
	}
	resp, err := c.get(ctx, path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var t TailResponse
	if err := json.NewDecoder(resp.Body).Decode(&t); err != nil {
		return nil, fmt.Errorf("replica: decoding tail response: %w", err)
	}
	return &t, nil
}

// snapshotName is the file the downloaded blob lands under inside a
// follower's per-collection directory — the same name acq durability uses,
// so acq.OpenDurable picks it up as a clean cold start.
const snapshotName = "snapshot.acqm"

// SnapshotPath returns where a bootstrap for dir would place the blob.
func SnapshotPath(dir string) string { return filepath.Join(dir, snapshotName) }
