// Package replica is the cluster tier's snapshot-shipping replication
// protocol: the wire types served by a leader's /v1/replication/* endpoints,
// the HTTP client a follower polls them with, and the Syncer that drives one
// collection's bootstrap-then-catch-up state machine.
//
// The protocol ships the durability artefacts unchanged. A follower
// bootstraps by downloading the leader's current mapped snapshot (the same
// snapshot.acqm bytes a local restart would mmap) into its own durability
// directory and opening it with acq.OpenDurable; from then on it polls the
// leader's WAL tail — the effective-mutation batches after its own version —
// and applies each batch through acq.Graph.ApplyReplicated, which WAL-logs
// it locally in turn. A follower restart therefore recovers from local disk
// and only fetches the records it missed; only divergence (or a leader that
// checkpointed the requested tail away) forces a fresh bootstrap, which the
// leader signals with Reset.
//
// Every Client and Syncer method that talks to the leader blocks on network
// I/O; the lockio analyzer (cmd/acqvet) flags calls to them under a held
// mutex, exactly like WAL appends — a follower must never poll the leader
// while holding its graph's writer lock.
package replica

import (
	"fmt"

	acq "github.com/acq-search/acq"
)

// CollectionInfo is one collection in the leader's replication listing
// (GET /v1/replication/collections). Only durable collections are listed:
// replication ships durability artefacts, so a non-durable collection has
// nothing to ship.
type CollectionInfo struct {
	Name string `json:"name"`
	// Version is the leader graph's current mutation version.
	Version uint64 `json:"version"`
	// LastCheckpointVersion is the version of the snapshot blob a bootstrap
	// would download right now; the WAL tail covers the rest.
	LastCheckpointVersion uint64 `json:"last_checkpoint_version"`
	// WALBytes is the size of the leader's live WAL segment.
	WALBytes int64 `json:"wal_bytes"`
}

// Op is one replicated mutation on the wire. Vertices are dense IDs — the
// vertex set is fixed at build time and shipped in the snapshot's label
// table, so replication never resolves labels.
type Op struct {
	Op      string `json:"op"`
	U       int32  `json:"u,omitempty"`
	V       int32  `json:"v,omitempty"`
	Vertex  int32  `json:"vertex,omitempty"`
	Keyword string `json:"keyword,omitempty"`
}

// Batch is one leader mutation batch: the version it applies at and its
// effective ops in application order (mirrors acq.ReplicationBatch).
type Batch struct {
	PreVersion uint64 `json:"pre_version"`
	Ops        []Op   `json:"ops"`
}

// TailResponse is the body of GET /v1/replication/collections/{name}/tail.
type TailResponse struct {
	// LeaderVersion is the leader graph's version at serve time; the
	// follower's replication lag is LeaderVersion minus its own version
	// after applying Batches.
	LeaderVersion uint64 `json:"leader_version"`
	// From echoes the requested version; Batches continue exactly there.
	From    uint64  `json:"from"`
	Batches []Batch `json:"batches,omitempty"`
	// Reset reports that no contiguous tail from From exists anymore; the
	// follower must re-bootstrap from the snapshot endpoint.
	Reset bool `json:"reset,omitempty"`
}

// VersionHeader carries the snapshot blob's graph version on the snapshot
// endpoint's response.
const VersionHeader = "X-Acq-Snapshot-Version"

// OpsOfMutations converts a batch's effective ops to the wire form.
func OpsOfMutations(ms []acq.Mutation) []Op {
	out := make([]Op, len(ms))
	for i, m := range ms {
		out[i] = Op{Op: string(m.Op), U: m.U, V: m.V, Vertex: m.Vertex, Keyword: m.Keyword}
	}
	return out
}

// MutationsOfOps converts wire ops back to acq mutations, rejecting unknown
// op names (a protocol-version skew must fail loudly, not apply garbage).
func MutationsOfOps(ops []Op) ([]acq.Mutation, error) {
	out := make([]acq.Mutation, len(ops))
	for i, op := range ops {
		switch acq.MutationOp(op.Op) {
		case acq.OpInsertEdge, acq.OpRemoveEdge, acq.OpAddKeyword, acq.OpRemoveKeyword:
			out[i] = acq.Mutation{Op: acq.MutationOp(op.Op), U: op.U, V: op.V, Vertex: op.Vertex, Keyword: op.Keyword}
		default:
			return nil, fmt.Errorf("replica: unknown replicated op %q", op.Op)
		}
	}
	return out, nil
}

// BatchesOfTail converts a tail response's batches to the acq form.
func BatchesOfTail(t *TailResponse) ([]acq.ReplicationBatch, error) {
	out := make([]acq.ReplicationBatch, len(t.Batches))
	for i, b := range t.Batches {
		ms, err := MutationsOfOps(b.Ops)
		if err != nil {
			return nil, err
		}
		out[i] = acq.ReplicationBatch{PreVersion: b.PreVersion, Ops: ms}
	}
	return out, nil
}

// TailOfResult converts a leader-side acq tail result to the wire form.
func TailOfResult(res acq.ReplicationTailResult, from, leaderVersion uint64) *TailResponse {
	t := &TailResponse{LeaderVersion: leaderVersion, From: from, Reset: res.Reset}
	if len(res.Batches) > 0 {
		t.Batches = make([]Batch, len(res.Batches))
		for i, b := range res.Batches {
			t.Batches[i] = Batch{PreVersion: b.PreVersion, Ops: OpsOfMutations(b.Ops)}
		}
	}
	return t
}
