package replica

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	acq "github.com/acq-search/acq"
)

func TestWireConversionRoundTrip(t *testing.T) {
	ms := []acq.Mutation{
		{Op: acq.OpInsertEdge, U: 1, V: 2},
		{Op: acq.OpRemoveEdge, U: 2, V: 3},
		{Op: acq.OpAddKeyword, Vertex: 4, Keyword: "research"},
		{Op: acq.OpRemoveKeyword, Vertex: 4, Keyword: "yoga"},
	}
	back, err := MutationsOfOps(OpsOfMutations(ms))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ms, back) {
		t.Fatalf("round trip lost data:\nin:  %+v\nout: %+v", ms, back)
	}
}

func TestMutationsOfOpsRejectsUnknown(t *testing.T) {
	// Protocol-version skew must fail loudly, not apply garbage.
	if _, err := MutationsOfOps([]Op{{Op: "truncate_graph"}}); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestTailOfResultShape(t *testing.T) {
	res := acq.ReplicationTailResult{
		Batches: []acq.ReplicationBatch{
			{PreVersion: 7, Ops: []acq.Mutation{{Op: acq.OpInsertEdge, U: 1, V: 2}}},
		},
	}
	wire := TailOfResult(res, 7, 9)
	if wire.LeaderVersion != 9 || wire.From != 7 || wire.Reset ||
		len(wire.Batches) != 1 || wire.Batches[0].PreVersion != 7 || len(wire.Batches[0].Ops) != 1 {
		t.Fatalf("wire = %+v", wire)
	}
	batches, err := BatchesOfTail(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Batches, batches) {
		t.Fatalf("tail round trip:\nin:  %+v\nout: %+v", res.Batches, batches)
	}

	reset := TailOfResult(acq.ReplicationTailResult{Reset: true}, 3, 9)
	if !reset.Reset || len(reset.Batches) != 0 {
		t.Fatalf("reset wire = %+v", reset)
	}
}

// fakeLeader serves a minimal replication surface from canned data.
func fakeLeader(t *testing.T, blob []byte, version string) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/replication/collections", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"collections":[{"name":"default","version":12,"last_checkpoint_version":10,"wal_bytes":64}]}`))
	})
	mux.HandleFunc("GET /v1/replication/collections/default/snapshot", func(w http.ResponseWriter, r *http.Request) {
		if version != "" {
			w.Header().Set(VersionHeader, version)
		}
		w.Write(blob)
	})
	mux.HandleFunc("GET /v1/replication/collections/default/tail", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("from") != "12" {
			http.Error(w, `{"error":{"code":"bad_request"}}`, http.StatusBadRequest)
			return
		}
		w.Write([]byte(`{"leader_version":12,"from":12,"batches":[]}`))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestClientAgainstFakeLeader(t *testing.T) {
	blob := []byte("not a real snapshot, the client ships bytes blindly")
	srv := fakeLeader(t, blob, "10")
	c := NewClient(srv.URL+"/", nil) // trailing slash is normalised away
	if c.BaseURL() != srv.URL {
		t.Fatalf("base = %q", c.BaseURL())
	}
	ctx := context.Background()

	infos, err := c.Collections(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := CollectionInfo{Name: "default", Version: 12, LastCheckpointVersion: 10, WALBytes: 64}
	if len(infos) != 1 || infos[0] != want {
		t.Fatalf("collections = %+v", infos)
	}

	dst := SnapshotPath(t.TempDir())
	v, err := c.FetchSnapshot(ctx, "default", dst)
	if err != nil {
		t.Fatal(err)
	}
	if v != 10 {
		t.Fatalf("snapshot version = %d", v)
	}
	got, err := os.ReadFile(dst)
	if err != nil || string(got) != string(blob) {
		t.Fatalf("blob = %q, %v", got, err)
	}
	if _, err := os.Stat(dst + ".dl"); !os.IsNotExist(err) {
		t.Fatal("staging file left behind")
	}

	tail, err := c.Tail(ctx, "default", 12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tail.LeaderVersion != 12 || tail.From != 12 || len(tail.Batches) != 0 || tail.Reset {
		t.Fatalf("tail = %+v", tail)
	}
	// The leader's structured error surfaces in the client error.
	if _, err := c.Tail(ctx, "default", 3, 0); err == nil {
		t.Fatal("leader 400 not surfaced")
	}
}

func TestFetchSnapshotMissingVersionHeader(t *testing.T) {
	srv := fakeLeader(t, []byte("blob"), "")
	c := NewClient(srv.URL, nil)
	dir := t.TempDir()
	if _, err := c.FetchSnapshot(context.Background(), "default", SnapshotPath(dir)); err == nil {
		t.Fatal("missing version header accepted")
	}
	// The failed download must not leave a snapshot under the real name —
	// acq.OpenDurable would otherwise try to map garbage on the next boot.
	if _, err := os.Stat(SnapshotPath(dir)); !os.IsNotExist(err) {
		t.Fatal("failed fetch left a snapshot file")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".dl" {
			t.Fatalf("staging file %s left behind", e.Name())
		}
	}
}
