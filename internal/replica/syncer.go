package replica

import (
	"context"
	"errors"
	"fmt"
	"os"

	acq "github.com/acq-search/acq"
)

// Syncer drives one collection's replication on a follower: bootstrap from
// the leader's snapshot into a local durability directory, then repeated
// tail polls applied through acq.Graph.ApplyReplicated. The Syncer itself
// holds no locks and owns no goroutine — the engine's follower loop calls it
// and decides cadence; every method blocks on network and/or disk I/O.
type Syncer struct {
	Client     *Client
	Collection string
	// Dir is the follower's local durability directory for this collection.
	// The downloaded snapshot and the locally re-logged WAL live here, so a
	// follower restart recovers from disk and only fetches what it missed.
	Dir string
	// SyncMode / CheckpointEvery configure the local durability exactly like
	// a leader's (acq.DurableOptions semantics).
	SyncMode        string
	CheckpointEvery int
}

func (s *Syncer) options() acq.DurableOptions {
	return acq.DurableOptions{Dir: s.Dir, SyncMode: s.SyncMode, CheckpointEvery: s.CheckpointEvery}
}

// Open recovers the collection from local disk when durable state exists,
// and bootstraps from the leader otherwise (bootstrapped reports which).
// The returned graph stands at some version ≤ the leader's; Sync catches it
// up.
func (s *Syncer) Open(ctx context.Context) (g *acq.Graph, bootstrapped bool, err error) {
	g, err = acq.OpenDurable(s.options())
	if err == nil {
		return g, false, nil
	}
	if !errors.Is(err, acq.ErrNoDurableState) {
		// Damaged local state (half-written download, torn snapshot): a
		// fresh bootstrap replaces it rather than refusing to serve.
		if rmErr := os.RemoveAll(s.Dir); rmErr != nil {
			return nil, false, fmt.Errorf("replica: clearing damaged state for %q: %v (after %w)", s.Collection, rmErr, err)
		}
	}
	g, err = s.Bootstrap(ctx)
	return g, err == nil, err
}

// Bootstrap wipes the local directory, downloads the leader's current
// snapshot blob and opens it as this follower's durable state. The returned
// graph stands at the blob's checkpoint version.
func (s *Syncer) Bootstrap(ctx context.Context) (*acq.Graph, error) {
	if err := os.RemoveAll(s.Dir); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return nil, err
	}
	version, err := s.Client.FetchSnapshot(ctx, s.Collection, SnapshotPath(s.Dir))
	if err != nil {
		return nil, err
	}
	g, err := acq.OpenDurable(s.options())
	if err != nil {
		return nil, fmt.Errorf("replica: opening bootstrapped snapshot for %q: %w", s.Collection, err)
	}
	if got := g.Version(); got != version {
		return nil, fmt.Errorf("replica: bootstrapped %q at version %d, leader stamped %d", s.Collection, got, version)
	}
	return g, nil
}

// Sync runs one catch-up round: poll the tail from g's version and apply
// every returned batch. It reports the number of ops applied, the leader's
// version at serve time, and whether the leader demanded a reset (the tail
// is gone or the histories diverged — the caller should Bootstrap a fresh
// graph and swap it in). An apply divergence (acq.ErrReplicaDiverged) is
// reported as reset=true too: the recovery is the same.
func (s *Syncer) Sync(ctx context.Context, g *acq.Graph) (applied int, leaderVersion uint64, reset bool, err error) {
	t, err := s.Client.Tail(ctx, s.Collection, g.Version(), 0)
	if err != nil {
		return 0, 0, false, err
	}
	if t.Reset {
		return 0, t.LeaderVersion, true, nil
	}
	batches, err := BatchesOfTail(t)
	if err != nil {
		return 0, t.LeaderVersion, false, err
	}
	for _, b := range batches {
		if err := g.ApplyReplicated(b); err != nil {
			if errors.Is(err, acq.ErrReplicaDiverged) {
				return applied, t.LeaderVersion, true, err
			}
			return applied, t.LeaderVersion, false, err
		}
		applied += len(b.Ops)
	}
	return applied, t.LeaderVersion, false, nil
}
