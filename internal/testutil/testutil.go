// Package testutil provides shared fixtures and random-graph generators for
// the test suites. The fixtures encode the paper's worked examples exactly
// (Figure 3/4 graph A–J, Figure 5 graph A–N, Figure 6 neighbourhood), so the
// tests double as a check that this implementation matches the published
// semantics.
package testutil

import (
	"math/rand"

	"github.com/acq-search/acq/internal/graph"
)

// Fig3Graph builds the 10-vertex graph of the paper's Figure 3(a) with the
// keyword sets printed there. Core numbers: A–D:3, E:2, F–I:1, J:0. The
// 1-ĉores are {A..G} and {H, I}; the 2-ĉore is {A..E}; the 3-ĉore is {A..D}.
func Fig3Graph() *graph.Graph {
	b := graph.NewBuilder()
	b.AddVertex("A", "w", "x", "y")
	b.AddVertex("B", "x")
	b.AddVertex("C", "x", "y")
	b.AddVertex("D", "x", "y", "z")
	b.AddVertex("E", "y", "z")
	b.AddVertex("F", "y")
	b.AddVertex("G", "x", "y")
	b.AddVertex("H", "y", "z")
	b.AddVertex("I", "x")
	b.AddVertex("J", "x")
	for _, e := range [][2]string{
		{"A", "B"}, {"A", "C"}, {"A", "D"}, {"B", "C"}, {"B", "D"}, {"C", "D"}, // K4: 3-core
		{"C", "E"}, {"D", "E"}, // E joins the 2-core
		{"E", "G"}, {"F", "G"}, // F, G at core 1
		{"H", "I"}, // separate 1-ĉore; J stays isolated at core 0
	} {
		b.AddEdgeByLabel(e[0], e[1])
	}
	return b.MustBuild()
}

// Fig5Graph builds the 14-vertex graph of the paper's Figure 5 / Example 3.
// Core numbers: A–D and I–L: 3, E–G: 2, H and M: 1, N: 0. The CL-tree is
// p6(0,{N}) → p4(1,{H}) → p3(2,{E,F,G}) → p1(3,{A,B,C,D}) and
// p6 → p5(1,{M}) → p2(3,{I,J,K,L}).
func Fig5Graph() *graph.Graph {
	b := graph.NewBuilder()
	for _, v := range []string{"A", "B", "C", "D", "E", "F", "G", "H", "I", "J", "K", "L", "M", "N"} {
		b.AddVertex(v, "t"+v) // one unique keyword each; keywords are not the point here
	}
	for _, e := range [][2]string{
		{"A", "B"}, {"A", "C"}, {"A", "D"}, {"B", "C"}, {"B", "D"}, {"C", "D"},
		{"I", "J"}, {"I", "K"}, {"I", "L"}, {"J", "K"}, {"J", "L"}, {"K", "L"},
		{"E", "F"}, {"E", "G"}, {"F", "G"}, {"E", "A"},
		{"H", "A"},
		{"M", "I"},
	} {
		b.AddEdgeByLabel(e[0], e[1])
	}
	return b.MustBuild()
}

// Fig6Neighborhood builds the query neighbourhood of the paper's Figure 6:
// Q with six neighbours A–F carrying the listed keyword sets. With k=3 and
// S={v,x,y,z}, FP-Growth must produce Ψ1={v},{x},{y},{z}, Ψ2={x,y},{x,z},
// {y,z}, Ψ3={x,y,z}.
func Fig6Neighborhood() *graph.Graph {
	b := graph.NewBuilder()
	b.AddVertex("Q", "v", "x", "y", "z")
	b.AddVertex("A", "v", "x", "y", "z")
	b.AddVertex("B", "v", "x")
	b.AddVertex("C", "v", "y")
	b.AddVertex("D", "x", "y", "z")
	b.AddVertex("E", "w", "x", "y", "z")
	b.AddVertex("F", "v", "w")
	for _, n := range []string{"A", "B", "C", "D", "E", "F"} {
		b.AddEdgeByLabel("Q", n)
	}
	return b.MustBuild()
}

// RandomGraph returns a connected-ish Erdős–Rényi-style attributed graph for
// differential tests: n vertices, ~n·avgDeg/2 random edges, each vertex
// holding up to kws keywords drawn Zipf-ish from a vocabulary of vocab words.
// It is intentionally a different generator from internal/datagen so the two
// cannot share bugs.
func RandomGraph(rng *rand.Rand, n int, avgDeg float64, vocab, kws int) *graph.Graph {
	b := graph.NewBuilder()
	words := make([]string, vocab)
	for i := range words {
		words[i] = "w" + string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i/260))
	}
	for v := 0; v < n; v++ {
		nw := rng.Intn(kws + 1)
		set := make([]string, 0, nw)
		for i := 0; i < nw; i++ {
			// Squared uniform gives a mild popularity skew.
			f := rng.Float64()
			set = append(set, words[int(f*f*float64(vocab))%vocab])
		}
		b.AddVertex("", set...)
	}
	edges := int(float64(n) * avgDeg / 2)
	for i := 0; i < edges; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u != v {
			b.AddEdge(graph.VertexID(u), graph.VertexID(v))
		}
	}
	return b.MustBuild()
}

// Labels resolves a list of vertex labels to IDs; missing labels panic (the
// fixtures control their own labels).
func Labels(g *graph.Graph, names ...string) []graph.VertexID {
	out := make([]graph.VertexID, len(names))
	for i, n := range names {
		v, ok := g.VertexByLabel(n)
		if !ok {
			panic("testutil: unknown label " + n)
		}
		out[i] = v
	}
	return out
}

// LabelSet renders a vertex set as a sorted set of labels for comparisons.
func LabelSet(g *graph.Graph, vs []graph.VertexID) map[string]bool {
	out := make(map[string]bool, len(vs))
	for _, v := range vs {
		out[g.Label(v)] = true
	}
	return out
}
