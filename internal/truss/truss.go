// Package truss implements k-truss machinery: triangle counting, truss
// decomposition and truss-constrained community extraction.
//
// The paper's conclusion lists k-truss as the next structure-cohesiveness
// measure to support in ACQ (its reference [16], Huang et al., SIGMOD 2014,
// uses exactly this notion for non-attributed community search). A k-truss
// is a subgraph in which every edge closes at least k−2 triangles inside the
// subgraph; the trussness of an edge is the largest k for which some k-truss
// contains it. Compared with the k-core, the k-truss demands triangle
// support rather than plain degree, which filters out loosely attached
// members.
//
// This package provides the substrate; the attributed (keyword-cohesive)
// truss search built on top of it lives in internal/core (TrussSearch).
package truss

import (
	"sort"

	"github.com/acq-search/acq/internal/cancel"
	"github.com/acq-search/acq/internal/graph"
)

// EdgeID indexes the graph's undirected edges in the canonical order
// produced by Edges (sorted by (min endpoint, max endpoint)).
type EdgeID int32

// Decomposition holds the truss decomposition of a graph.
type Decomposition struct {
	// Edges lists each undirected edge once, canonically ordered.
	Edges [][2]graph.VertexID
	// Trussness[e] is the trussness of Edges[e] (≥ 2 for every edge; an
	// edge in no triangle has trussness 2).
	Trussness []int32
	// MaxTruss is the maximum trussness (0 for an edgeless graph).
	MaxTruss int32

	index map[[2]graph.VertexID]EdgeID
}

// EdgeIndex returns the ID of edge {u, v}, if present.
func (d *Decomposition) EdgeIndex(u, v graph.VertexID) (EdgeID, bool) {
	if u > v {
		u, v = v, u
	}
	id, ok := d.index[[2]graph.VertexID{u, v}]
	return id, ok
}

// VertexTrussness returns, for every vertex, the maximum trussness over its
// incident edges (0 for isolated vertices). A vertex can belong to a k-truss
// only if its vertex trussness is ≥ k.
func (d *Decomposition) VertexTrussness(n int) []int32 {
	out := make([]int32, n)
	for e, ends := range d.Edges {
		t := d.Trussness[e]
		if out[ends[0]] < t {
			out[ends[0]] = t
		}
		if out[ends[1]] < t {
			out[ends[1]] = t
		}
	}
	return out
}

// Decompose computes the trussness of every edge with the standard
// support-peeling algorithm: count triangles per edge, then repeatedly remove
// the edge with minimum support, decrementing the support of the other two
// edges of each triangle it closed. Runtime is O(m^1.5) for the triangle
// counting plus near-linear peeling.
func Decompose(g graph.View) *Decomposition {
	d := &Decomposition{index: map[[2]graph.VertexID]EdgeID{}}
	n := g.NumVertices()
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(graph.VertexID(u)) {
			if graph.VertexID(u) < v {
				d.index[[2]graph.VertexID{graph.VertexID(u), v}] = EdgeID(len(d.Edges))
				d.Edges = append(d.Edges, [2]graph.VertexID{graph.VertexID(u), v})
			}
		}
	}
	m := len(d.Edges)
	d.Trussness = make([]int32, m)
	if m == 0 {
		return d
	}

	support := make([]int32, m)
	forEachTriangle(g, d, func(e1, e2, e3 EdgeID) {
		support[e1]++
		support[e2]++
		support[e3]++
	})

	// Bucket peeling on support (support s ⇒ trussness ≥ s+2 until peeled).
	maxSup := int32(0)
	for _, s := range support {
		if s > maxSup {
			maxSup = s
		}
	}
	buckets := make([][]EdgeID, maxSup+1)
	for e := 0; e < m; e++ {
		buckets[support[e]] = append(buckets[support[e]], EdgeID(e))
	}
	alive := make([]bool, m)
	for i := range alive {
		alive[i] = true
	}
	cur := append([]int32(nil), support...)
	removed := 0
	level := int32(0)
	for removed < m {
		// Find the lowest non-empty bucket ≥ 0; entries may be stale (edge
		// already peeled or support since decreased), so re-check.
		var e EdgeID = -1
		for s := int32(0); s <= maxSup; s++ {
			for len(buckets[s]) > 0 {
				cand := buckets[s][len(buckets[s])-1]
				buckets[s] = buckets[s][:len(buckets[s])-1]
				if alive[cand] && cur[cand] == s {
					e = cand
					level = s
					break
				}
			}
			if e >= 0 {
				break
			}
		}
		if e < 0 {
			break
		}
		alive[e] = false
		removed++
		d.Trussness[e] = level + 2
		// Decrement the support of surviving triangle partners.
		u, v := d.Edges[e][0], d.Edges[e][1]
		forEachCommonNeighbor(g, u, v, func(w graph.VertexID) {
			e1, ok1 := d.EdgeIndex(u, w)
			e2, ok2 := d.EdgeIndex(v, w)
			if !ok1 || !ok2 || !alive[e1] || !alive[e2] {
				return
			}
			for _, pe := range []EdgeID{e1, e2} {
				if cur[pe] > level {
					cur[pe]--
					buckets[cur[pe]] = append(buckets[cur[pe]], pe)
				}
			}
		})
	}
	for _, t := range d.Trussness {
		if t > d.MaxTruss {
			d.MaxTruss = t
		}
	}
	return d
}

// forEachTriangle enumerates each triangle once, reporting its three edges.
func forEachTriangle(g graph.View, d *Decomposition, fn func(e1, e2, e3 EdgeID)) {
	n := g.NumVertices()
	for u := 0; u < n; u++ {
		uv := graph.VertexID(u)
		for _, v := range g.Neighbors(uv) {
			if v <= uv {
				continue
			}
			forEachCommonNeighbor(g, uv, v, func(w graph.VertexID) {
				if w <= v { // enforce u < v < w so each triangle fires once
					return
				}
				e1, _ := d.EdgeIndex(uv, v)
				e2, _ := d.EdgeIndex(uv, w)
				e3, _ := d.EdgeIndex(v, w)
				fn(e1, e2, e3)
			})
		}
	}
}

// forEachCommonNeighbor calls fn for every common neighbour of u and v.
func forEachCommonNeighbor(g graph.View, u, v graph.VertexID, fn func(w graph.VertexID)) {
	a, b := g.Neighbors(u), g.Neighbors(v)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			fn(a[i])
			i++
			j++
		}
	}
}

// CommunityOf returns the connected k-truss community containing q inside
// the subgraph induced by cand: edges with in-subgraph support < k−2 are
// peeled iteratively, then q's connected component over the surviving edges
// is returned (vertices sorted) together with those surviving edges. A
// k-truss is an edge subgraph — an edge between two community members that
// was peeled is NOT part of the community even though both endpoints are.
// nil vertices means q survives in no such subgraph. k must be ≥ 2; k=2
// degenerates to q's connected component.
//
// check (nil for uncancellable callers) is ticked per edge examined during
// support counting and peeling, so a deadline can stop a truss verification
// mid-peel.
func CommunityOf(g graph.View, cand []graph.VertexID, q graph.VertexID, k int, check *cancel.Checker) ([]graph.VertexID, [][2]graph.VertexID) {
	if k < 2 {
		k = 2
	}
	in := map[graph.VertexID]bool{}
	for _, v := range cand {
		check.Tick(1)
		in[v] = true
	}
	if !in[q] {
		return nil, nil
	}
	// Local edge set of the induced subgraph.
	type edge struct{ u, v graph.VertexID }
	sup := map[edge]int{}
	alive := map[edge]bool{}
	mk := func(u, v graph.VertexID) edge {
		if u > v {
			u, v = v, u
		}
		return edge{u, v}
	}
	for _, u := range cand {
		check.Tick(1)
		for _, v := range g.Neighbors(u) {
			if u < v && in[v] {
				alive[mk(u, v)] = true
			}
		}
	}
	neighbors := func(u graph.VertexID) []graph.VertexID {
		check.Tick(1)
		var out []graph.VertexID
		for _, v := range g.Neighbors(u) {
			if in[v] && alive[mk(u, v)] {
				out = append(out, v)
			}
		}
		return out
	}
	countSupport := func(e edge) int {
		s := 0
		forEachCommonNeighbor(g, e.u, e.v, func(w graph.VertexID) {
			if in[w] && alive[mk(e.u, w)] && alive[mk(e.v, w)] {
				s++
			}
		})
		return s
	}
	queue := make([]edge, 0)
	for e := range alive {
		check.Tick(1)
		sup[e] = countSupport(e)
		if sup[e] < k-2 {
			queue = append(queue, e)
		}
	}
	sort.Slice(queue, func(i, j int) bool { // determinism over map order
		if queue[i].u != queue[j].u {
			return queue[i].u < queue[j].u
		}
		return queue[i].v < queue[j].v
	})
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		check.Tick(1)
		if !alive[e] {
			continue
		}
		alive[e] = false
		forEachCommonNeighbor(g, e.u, e.v, func(w graph.VertexID) {
			if !in[w] {
				return
			}
			// The triangle only still exists if BOTH partner edges are
			// alive; otherwise its support contribution was already gone.
			e1, e2 := mk(e.u, w), mk(e.v, w)
			if !alive[e1] || !alive[e2] {
				return
			}
			for _, pe := range []edge{e1, e2} {
				sup[pe]--
				if sup[pe] < k-2 {
					queue = append(queue, pe)
				}
			}
		})
	}
	// BFS over surviving edges from q.
	visited := map[graph.VertexID]bool{q: true}
	comp := []graph.VertexID{q}
	for head := 0; head < len(comp); head++ {
		check.Tick(1)
		for _, v := range neighbors(comp[head]) {
			if !visited[v] {
				visited[v] = true
				comp = append(comp, v)
			}
		}
	}
	if len(comp) == 1 && len(neighbors(q)) == 0 {
		return nil, nil
	}
	var edges [][2]graph.VertexID
	for _, u := range comp {
		check.Tick(1)
		for _, v := range neighbors(u) {
			if u < v {
				edges = append(edges, [2]graph.VertexID{u, v})
			}
		}
	}
	sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	return comp, edges
}
