package truss

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/acq-search/acq/internal/graph"
	"github.com/acq-search/acq/internal/testutil"
)

func clique(n int) *graph.Graph {
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddVertex("")
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(graph.VertexID(i), graph.VertexID(j))
		}
	}
	return b.MustBuild()
}

func TestDecomposeClique(t *testing.T) {
	// In K_n every edge lies in n−2 triangles → trussness n.
	for n := 3; n <= 6; n++ {
		d := Decompose(clique(n))
		for e, tr := range d.Trussness {
			if tr != int32(n) {
				t.Fatalf("K%d: trussness(e%d) = %d, want %d", n, e, tr, n)
			}
		}
		if d.MaxTruss != int32(n) {
			t.Fatalf("K%d: maxtruss = %d", n, d.MaxTruss)
		}
	}
}

func TestDecomposePathAndTriangleTail(t *testing.T) {
	// Path: no triangles → every edge trussness 2.
	b := graph.NewBuilder()
	for i := 0; i < 4; i++ {
		b.AddVertex("")
	}
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	d := Decompose(b.MustBuild())
	for _, tr := range d.Trussness {
		if tr != 2 {
			t.Fatalf("path trussness = %v", d.Trussness)
		}
	}

	// Triangle with a pendant edge: triangle edges 3, pendant 2.
	b = graph.NewBuilder()
	for i := 0; i < 4; i++ {
		b.AddVertex("")
	}
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	d = Decompose(b.MustBuild())
	e01, _ := d.EdgeIndex(0, 1)
	e23, _ := d.EdgeIndex(2, 3)
	if d.Trussness[e01] != 3 || d.Trussness[e23] != 2 {
		t.Fatalf("trussness = %v", d.Trussness)
	}
}

func TestDecomposeEmptyAndEdgeless(t *testing.T) {
	d := Decompose(graph.NewBuilder().MustBuild())
	if len(d.Edges) != 0 || d.MaxTruss != 0 {
		t.Fatalf("empty graph: %+v", d)
	}
	b := graph.NewBuilder()
	b.AddVertex("solo")
	d = Decompose(b.MustBuild())
	if len(d.Edges) != 0 {
		t.Fatal("edgeless graph has edges")
	}
}

func TestVertexTrussness(t *testing.T) {
	g := testutil.Fig3Graph() // K4 on A..D plus tails
	d := Decompose(g)
	vt := d.VertexTrussness(g.NumVertices())
	a, _ := g.VertexByLabel("A")
	fv, _ := g.VertexByLabel("F")
	j, _ := g.VertexByLabel("J")
	if vt[a] != 4 {
		t.Fatalf("vertex trussness of A = %d, want 4 (K4)", vt[a])
	}
	if vt[fv] != 2 {
		t.Fatalf("vertex trussness of F = %d, want 2", vt[fv])
	}
	if vt[j] != 0 {
		t.Fatalf("vertex trussness of isolated J = %d, want 0", vt[j])
	}
}

// bruteTrussness computes edge trussness by repeated fixpoint filtering.
func bruteTrussness(g *graph.Graph) map[[2]graph.VertexID]int32 {
	type edge = [2]graph.VertexID
	edges := map[edge]bool{}
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Neighbors(graph.VertexID(u)) {
			if graph.VertexID(u) < v {
				edges[edge{graph.VertexID(u), v}] = true
			}
		}
	}
	out := map[edge]int32{}
	for e := range edges {
		out[e] = 2
	}
	for k := int32(3); ; k++ {
		// Peel to the k-truss fixpoint.
		alive := map[edge]bool{}
		for e := range edges {
			alive[e] = true
		}
		support := func(e edge) int32 {
			s := int32(0)
			forEachCommonNeighbor(g, e[0], e[1], func(w graph.VertexID) {
				a, b := e[0], e[1]
				ea := edge{a, w}
				if a > w {
					ea = edge{w, a}
				}
				eb := edge{b, w}
				if b > w {
					eb = edge{w, b}
				}
				if alive[ea] && alive[eb] {
					s++
				}
			})
			return s
		}
		for changed := true; changed; {
			changed = false
			for e := range alive {
				if alive[e] && support(e) < k-2 {
					alive[e] = false
					changed = true
				}
			}
		}
		any := false
		for e, a := range alive {
			if a {
				out[e] = k
				any = true
			}
		}
		if !any {
			return out
		}
	}
}

// Property: peeling decomposition matches the brute-force fixpoint
// definition on random graphs.
func TestDecomposeMatchesBruteQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := testutil.RandomGraph(rng, 3+rng.Intn(25), 1+4*rng.Float64(), 5, 2)
		d := Decompose(g)
		want := bruteTrussness(g)
		for e, ends := range d.Edges {
			if d.Trussness[e] != want[ends] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCommunityOf(t *testing.T) {
	g := testutil.Fig3Graph()
	all := make([]graph.VertexID, g.NumVertices())
	for i := range all {
		all[i] = graph.VertexID(i)
	}
	a, _ := g.VertexByLabel("A")
	e, _ := g.VertexByLabel("E")

	// 4-truss containing A = the K4 (6 edges).
	comm, edges := CommunityOf(g, all, a, 4, nil)
	if got := testutil.LabelSet(g, comm); len(got) != 4 || !got["D"] {
		t.Fatalf("4-truss of A = %v", got)
	}
	if len(edges) != 6 {
		t.Fatalf("4-truss edges = %d, want 6", len(edges))
	}
	// E is in no 4-truss.
	if got, _ := CommunityOf(g, all, e, 4, nil); got != nil {
		t.Fatal("E must not be in a 4-truss")
	}
	// 3-truss containing E: E-C-D triangle attaches to the K4 through the
	// shared C-D edge, so the 3-truss community of E includes A..E.
	comm, _ = CommunityOf(g, all, e, 3, nil)
	if got := testutil.LabelSet(g, comm); len(got) != 5 || !got["E"] {
		t.Fatalf("3-truss of E = %v", got)
	}
	// Candidate restriction is honoured.
	abc := testutil.Labels(g, "A", "B", "C")
	comm, _ = CommunityOf(g, abc, a, 3, nil)
	if got := testutil.LabelSet(g, comm); len(got) != 3 {
		t.Fatalf("restricted 3-truss = %v", got)
	}
	// q outside cand.
	if got, _ := CommunityOf(g, abc, e, 3, nil); got != nil {
		t.Fatal("q outside cand must be nil")
	}
}

// Property: every returned community is a valid k-truss (edge support ≥ k−2
// inside it), connected, and contains q.
func TestCommunityOfSoundQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := testutil.RandomGraph(rng, 4+rng.Intn(30), 2+4*rng.Float64(), 5, 2)
		all := make([]graph.VertexID, g.NumVertices())
		for i := range all {
			all[i] = graph.VertexID(i)
		}
		q := graph.VertexID(rng.Intn(g.NumVertices()))
		k := 3 + rng.Intn(2)
		comm, edges := CommunityOf(g, all, q, k, nil)
		if comm == nil {
			return edges == nil
		}
		in := map[graph.VertexID]bool{}
		hasQ := false
		for _, v := range comm {
			in[v] = true
			hasQ = hasQ || v == q
		}
		if !hasQ {
			return false
		}
		// Every community edge must close ≥ k−2 triangles using community
		// edges only (a k-truss is an edge subgraph).
		alive := map[[2]graph.VertexID]bool{}
		for _, e := range edges {
			if !in[e[0]] || !in[e[1]] {
				return false
			}
			alive[e] = true
		}
		for e := range alive {
			s := 0
			forEachCommonNeighbor(g, e[0], e[1], func(w graph.VertexID) {
				ea := [2]graph.VertexID{e[0], w}
				if w < e[0] {
					ea = [2]graph.VertexID{w, e[0]}
				}
				eb := [2]graph.VertexID{e[1], w}
				if w < e[1] {
					eb = [2]graph.VertexID{w, e[1]}
				}
				if alive[ea] && alive[eb] {
					s++
				}
			})
			if s < k-2 {
				return false
			}
		}
		// Vertices are exactly the endpoints of community edges, connected
		// via those edges from q.
		reach := map[graph.VertexID]bool{q: true}
		frontier := []graph.VertexID{q}
		for len(frontier) > 0 {
			v := frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			for e := range alive {
				var other graph.VertexID = -1
				if e[0] == v {
					other = e[1]
				} else if e[1] == v {
					other = e[0]
				}
				if other >= 0 && !reach[other] {
					reach[other] = true
					frontier = append(frontier, other)
				}
			}
		}
		return len(reach) == len(comm)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
