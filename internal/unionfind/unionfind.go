// Package unionfind implements the classical disjoint-set forest with union
// by rank and path compression, and the paper's Anchored Union-Find (AUF)
// extension (Fang et al., PVLDB 2016, Section 5.2.2 and Appendix D).
//
// The AUF attaches to every tree root an anchor vertex: the member with the
// smallest core number seen so far. During the bottom-up CL-tree build the
// anchor of a merged component is exactly the vertex whose CL-tree node is
// the subtree root for that component, which is what lets the builder link
// parent nodes to child nodes in O(α(n)) per edge.
package unionfind

// UF is a disjoint-set forest over elements 0..n-1.
type UF struct {
	parent []int32
	rank   []int8
}

// New returns a forest of n singleton sets.
func New(n int) *UF {
	u := &UF{parent: make([]int32, n), rank: make([]int8, n)}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

// Find returns the representative of x's set, compressing the path.
func (u *UF) Find(x int32) int32 {
	root := x
	for u.parent[root] != root {
		root = u.parent[root]
	}
	for u.parent[x] != root {
		u.parent[x], x = root, u.parent[x]
	}
	return root
}

// Union merges the sets of x and y and returns the representative of the
// merged set.
func (u *UF) Union(x, y int32) int32 {
	xr, yr := u.Find(x), u.Find(y)
	if xr == yr {
		return xr
	}
	switch {
	case u.rank[xr] < u.rank[yr]:
		u.parent[xr] = yr
		return yr
	case u.rank[xr] > u.rank[yr]:
		u.parent[yr] = xr
		return xr
	default:
		u.parent[yr] = xr
		u.rank[xr]++
		return xr
	}
}

// Same reports whether x and y are in the same set.
func (u *UF) Same(x, y int32) bool { return u.Find(x) == u.Find(y) }

// AUF is a disjoint-set forest whose roots carry an anchor element. The
// anchor of a set is maintained as the member with the minimum value of the
// supplied core function among those explicitly recorded via UpdateAnchor.
type AUF struct {
	UF
	anchor []int32
	core   []int32
}

// NewAUF returns an anchored forest of n singleton sets; core[v] is the core
// number of element v (Definition 2 of the paper). Each singleton's anchor is
// itself, matching MAKESET in the paper's Algorithm 8.
func NewAUF(n int, core []int32) *AUF {
	a := &AUF{UF: *New(n), anchor: make([]int32, n), core: core}
	for i := range a.anchor {
		a.anchor[i] = int32(i)
	}
	return a
}

// Union merges the sets of x and y, keeping the anchor with the smaller core
// number (ties keep the surviving root's anchor).
func (a *AUF) Union(x, y int32) int32 {
	xr, yr := a.Find(x), a.Find(y)
	if xr == yr {
		return xr
	}
	ax, ay := a.anchor[xr], a.anchor[yr]
	r := a.UF.Union(xr, yr)
	if a.core[ay] < a.core[ax] {
		a.anchor[r] = ay
	} else {
		a.anchor[r] = ax
	}
	return r
}

// Anchor returns the anchor vertex of x's set.
func (a *AUF) Anchor(x int32) int32 { return a.anchor[a.Find(x)] }

// UpdateAnchor lowers the anchor of x's set to y if y's core number is
// smaller than the current anchor's core number (UPDATEANCHOR in the paper's
// Algorithm 8).
func (a *AUF) UpdateAnchor(x, y int32) {
	r := a.Find(x)
	if a.core[a.anchor[r]] > a.core[y] {
		a.anchor[r] = y
	}
}
