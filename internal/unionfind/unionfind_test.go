package unionfind

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUFBasics(t *testing.T) {
	u := New(5)
	if u.Same(0, 1) {
		t.Fatal("fresh sets must be disjoint")
	}
	u.Union(0, 1)
	u.Union(2, 3)
	if !u.Same(0, 1) || !u.Same(2, 3) || u.Same(1, 2) {
		t.Fatal("union/same wrong")
	}
	u.Union(1, 3)
	if !u.Same(0, 2) {
		t.Fatal("transitive union broken")
	}
	if u.Same(0, 4) {
		t.Fatal("vertex 4 should remain solo")
	}
	// Union of already-joined elements is a no-op.
	r := u.Union(0, 3)
	if r != u.Find(0) {
		t.Fatal("idempotent union returned wrong root")
	}
}

// Property: UF partitions match a naive label array under random unions.
func TestUFMatchesNaiveQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		u := New(n)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = i
		}
		relabel := func(from, to int) {
			for i := range labels {
				if labels[i] == from {
					labels[i] = to
				}
			}
		}
		for op := 0; op < 80; op++ {
			x, y := int32(rng.Intn(n)), int32(rng.Intn(n))
			u.Union(x, y)
			relabel(labels[x], labels[y])
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if u.Same(int32(i), int32(j)) != (labels[i] == labels[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAUFAnchorFollowsMinCore(t *testing.T) {
	core := []int32{5, 3, 4, 1, 2}
	a := NewAUF(5, core)
	for i := int32(0); i < 5; i++ {
		if a.Anchor(i) != i {
			t.Fatalf("singleton anchor of %d = %d", i, a.Anchor(i))
		}
	}
	a.Union(0, 1) // cores 5,3 → anchor 1
	if a.Anchor(0) != 1 {
		t.Fatalf("anchor = %d, want 1", a.Anchor(0))
	}
	a.Union(2, 3) // cores 4,1 → anchor 3
	if a.Anchor(2) != 3 {
		t.Fatalf("anchor = %d, want 3", a.Anchor(2))
	}
	a.Union(0, 2) // anchors 1(core 3) vs 3(core 1) → 3
	if a.Anchor(1) != 3 {
		t.Fatalf("anchor = %d, want 3", a.Anchor(1))
	}
	// UpdateAnchor only lowers.
	a.UpdateAnchor(0, 4) // core 2 > core(3)=1? no, 2 > 1 so no change
	if a.Anchor(0) != 3 {
		t.Fatalf("UpdateAnchor raised the anchor to %d", a.Anchor(0))
	}
}

func TestAUFUpdateAnchorLowers(t *testing.T) {
	core := []int32{9, 7}
	a := NewAUF(2, core)
	a.Union(0, 1)
	if a.Anchor(0) != 1 {
		t.Fatalf("anchor = %d", a.Anchor(0))
	}
	// Simulate the CL-tree build pattern: a new own vertex at a lower level
	// becomes the anchor explicitly.
	core2 := []int32{9, 7, 3}
	b := NewAUF(3, core2)
	b.Union(0, 1)
	b.Union(0, 2)
	if b.Anchor(1) != 2 {
		t.Fatalf("anchor = %d, want 2", b.Anchor(1))
	}
}

// Property: the anchor of any set is always the member with minimal core
// number among the elements unioned so far (ties arbitrary but stable core).
func TestAUFAnchorInvariantQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		core := make([]int32, n)
		for i := range core {
			core[i] = int32(rng.Intn(10))
		}
		a := NewAUF(n, core)
		groups := make([]int, n)
		for i := range groups {
			groups[i] = i
		}
		for op := 0; op < 60; op++ {
			x, y := rng.Intn(n), rng.Intn(n)
			a.Union(int32(x), int32(y))
			gx, gy := groups[x], groups[y]
			for i := range groups {
				if groups[i] == gx {
					groups[i] = gy
				}
			}
		}
		for i := 0; i < n; i++ {
			minCore := int32(1 << 30)
			for j := 0; j < n; j++ {
				if groups[j] == groups[i] && core[j] < minCore {
					minCore = core[j]
				}
			}
			if core[a.Anchor(int32(i))] != minCore {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
