// Package wal implements the per-collection write-ahead log behind durable
// graphs: every acknowledged mutation batch is appended as one length-prefixed,
// CRC-checked record before the caller's write returns, and replayed on boot
// to reconstruct the batches that landed after the last checkpoint.
//
// # File format
//
// A log file is an 8-byte header followed by records:
//
//	header:  magic "ACQW" | version u8 (1) | 3 reserved bytes
//	record:  payloadLen u32 | crc32c(payload) u32 | payload
//	payload: preVersion u64 | opCount u32 | ops
//	op:      kind u8 | int32 operands | (keyword ops) wordLen u16 | word bytes
//
// Everything is little-endian. preVersion is the graph's mutation version
// immediately before the batch applied; replay uses it to skip records whose
// effects a later snapshot already contains (a crash between the checkpoint
// rename and the old log's removal leaves such records behind) and to detect
// gaps. Only effective operations are logged — no-ops neither advance the
// version nor change state, so logging them would only skew the version
// arithmetic replay depends on.
//
// # Durability contract
//
// Append writes the whole record with one write(2) and, under SyncAlways,
// fsyncs before returning — an acknowledged batch then survives both process
// kill and machine crash. Under SyncNever the OS decides when pages reach the
// disk: a process kill still loses nothing (the page cache survives the
// process), only a machine crash can drop the tail. A torn tail — the partial
// record of an append that never returned — is detected by the length prefix
// and CRC on the next Open and truncated away: it was never acknowledged, so
// dropping it is correct, not lossy.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged batch survives a
	// machine crash. The default.
	SyncAlways SyncPolicy = iota
	// SyncNever leaves flushing to the OS: acknowledged batches survive a
	// process kill but a machine crash may drop the tail.
	SyncNever
)

// String returns the wire spelling used by flags and stats.
func (p SyncPolicy) String() string {
	if p == SyncNever {
		return "never"
	}
	return "always"
}

// ParseSyncPolicy parses the -fsync flag values "always" and "never".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "always":
		return SyncAlways, nil
	case "never":
		return SyncNever, nil
	default:
		return SyncAlways, fmt.Errorf("wal: unknown sync policy %q (want always or never)", s)
	}
}

// Op kinds. They mirror the four acq mutation kinds; the package deliberately
// does not import acq (acq imports wal), so the mapping lives with the caller.
const (
	OpInsertEdge    uint8 = 1
	OpRemoveEdge    uint8 = 2
	OpAddKeyword    uint8 = 3
	OpRemoveKeyword uint8 = 4
)

// Op is one logged mutation. Edge kinds use U and V; keyword kinds use U (the
// vertex) and Word.
type Op struct {
	Kind uint8
	U, V int32
	Word string
}

// Record is one logged mutation batch: the ops that changed the graph,
// stamped with the graph version immediately before the first of them.
type Record struct {
	PreVersion uint64
	Ops        []Op
}

const (
	headerSize = 8
	// maxRecordBytes bounds one record's payload so a corrupt length prefix
	// cannot trigger a multi-gigabyte allocation during replay. 64 MiB fits
	// far beyond any real batch (the engine caps batches in the thousands).
	maxRecordBytes = 64 << 20
	// maxWordBytes bounds one keyword; matches the u16 length prefix.
	maxWordBytes = 1<<16 - 1
)

var magic = [4]byte{'A', 'C', 'Q', 'W'}

const formatVersion = 1

// castagnoli is the CRC-32C table (the usual checksum for storage formats,
// hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrBadFormat reports a log whose header is not a WAL header — as opposed to
// a torn tail, which Open repairs silently.
var ErrBadFormat = errors.New("wal: not a write-ahead log")

// Log is an open write-ahead log positioned for appending.
type Log struct {
	f      *os.File
	path   string
	policy SyncPolicy
	size   int64
	buf    []byte // append scratch, reused across records
}

// Create creates a new, empty log at path (truncating any existing file),
// fsyncing the file and its directory so the log survives a crash straight
// after creation.
func Create(path string, policy SyncPolicy) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, headerSize)
	copy(hdr, magic[:])
	hdr[4] = formatVersion
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := syncDir(path); err != nil {
		f.Close()
		return nil, err
	}
	return &Log{f: f, path: path, policy: policy, size: headerSize}, nil
}

// Open opens an existing log, replays every intact record through fn in file
// order, truncates a torn tail if one exists, and returns the log positioned
// for appending plus the number of records replayed. A replay error from fn
// aborts the open.
func Open(path string, policy SyncPolicy, fn func(Record) error) (*Log, int, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, 0, err
	}
	end, n, err := scan(f, fn)
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	if fi.Size() > end {
		// Torn tail: a record that never finished writing. It was never
		// acknowledged, so cutting it off restores the invariant that the log
		// is a prefix of acknowledged history.
		if err := f.Truncate(end); err != nil {
			f.Close()
			return nil, 0, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, 0, err
		}
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, 0, err
	}
	return &Log{f: f, path: path, policy: policy, size: end}, n, nil
}

// Replay reads the records of the log at path without opening it for
// appending — used for the rotated previous-generation log a crashed
// checkpoint left behind. A torn tail is skipped, not repaired.
func Replay(path string, fn func(Record) error) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	_, n, err := scan(f, fn)
	return n, err
}

// scan reads the header and every intact record, returning the byte offset
// just past the last intact record and the record count. Corruption —
// truncation, a short payload, a CRC mismatch — ends the scan at the last
// good record, the standard torn-tail rule.
func scan(f *os.File, fn func(Record) error) (end int64, n int, err error) {
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return 0, 0, fmt.Errorf("%w: reading header: %v", ErrBadFormat, err)
	}
	if [4]byte(hdr[:4]) != magic {
		return 0, 0, fmt.Errorf("%w: bad magic %q", ErrBadFormat, hdr[:4])
	}
	if hdr[4] != formatVersion {
		return 0, 0, fmt.Errorf("wal: unsupported format version %d", hdr[4])
	}
	end = headerSize
	var pre [8]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(f, pre[:]); err != nil {
			return end, n, nil // clean EOF or torn length prefix
		}
		length := binary.LittleEndian.Uint32(pre[:4])
		sum := binary.LittleEndian.Uint32(pre[4:])
		if length > maxRecordBytes {
			return end, n, nil // corrupt length: treat as tail damage
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(f, payload); err != nil {
			return end, n, nil // torn payload
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return end, n, nil // bit rot or torn write inside the payload
		}
		rec, ok := decodeRecord(payload)
		if !ok {
			return end, n, nil
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return end, n, err
			}
		}
		end += 8 + int64(length)
		n++
	}
}

// decodeRecord parses one CRC-verified payload.
func decodeRecord(p []byte) (Record, bool) {
	if len(p) < 12 {
		return Record{}, false
	}
	rec := Record{PreVersion: binary.LittleEndian.Uint64(p[:8])}
	count := binary.LittleEndian.Uint32(p[8:12])
	p = p[12:]
	rec.Ops = make([]Op, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(p) < 1 {
			return Record{}, false
		}
		op := Op{Kind: p[0]}
		p = p[1:]
		switch op.Kind {
		case OpInsertEdge, OpRemoveEdge:
			if len(p) < 8 {
				return Record{}, false
			}
			op.U = int32(binary.LittleEndian.Uint32(p[:4]))
			op.V = int32(binary.LittleEndian.Uint32(p[4:8]))
			p = p[8:]
		case OpAddKeyword, OpRemoveKeyword:
			if len(p) < 6 {
				return Record{}, false
			}
			op.U = int32(binary.LittleEndian.Uint32(p[:4]))
			wl := int(binary.LittleEndian.Uint16(p[4:6]))
			p = p[6:]
			if len(p) < wl {
				return Record{}, false
			}
			op.Word = string(p[:wl])
			p = p[wl:]
		default:
			return Record{}, false
		}
		rec.Ops = append(rec.Ops, op)
	}
	if len(p) != 0 {
		return Record{}, false
	}
	return rec, true
}

// Append serialises rec, writes it with a single write call and — under
// SyncAlways — fsyncs before returning. The record is durable (to the policy's
// standard) once Append returns nil.
func (l *Log) Append(rec Record) error {
	l.buf = l.buf[:0]
	l.buf = append(l.buf, 0, 0, 0, 0, 0, 0, 0, 0) // length + crc, patched below
	l.buf = binary.LittleEndian.AppendUint64(l.buf, rec.PreVersion)
	l.buf = binary.LittleEndian.AppendUint32(l.buf, uint32(len(rec.Ops)))
	for _, op := range rec.Ops {
		l.buf = append(l.buf, op.Kind)
		switch op.Kind {
		case OpInsertEdge, OpRemoveEdge:
			l.buf = binary.LittleEndian.AppendUint32(l.buf, uint32(op.U))
			l.buf = binary.LittleEndian.AppendUint32(l.buf, uint32(op.V))
		case OpAddKeyword, OpRemoveKeyword:
			if len(op.Word) > maxWordBytes {
				return fmt.Errorf("wal: keyword of %d bytes exceeds the record format's %d-byte limit", len(op.Word), maxWordBytes)
			}
			l.buf = binary.LittleEndian.AppendUint32(l.buf, uint32(op.U))
			l.buf = binary.LittleEndian.AppendUint16(l.buf, uint16(len(op.Word)))
			l.buf = append(l.buf, op.Word...)
		default:
			return fmt.Errorf("wal: unknown op kind %d", op.Kind)
		}
	}
	payload := l.buf[8:]
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("wal: record of %d bytes exceeds the %d-byte limit", len(payload), maxRecordBytes)
	}
	binary.LittleEndian.PutUint32(l.buf[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(l.buf[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := l.f.Write(l.buf); err != nil {
		return err
	}
	l.size += int64(len(l.buf))
	if l.policy == SyncAlways {
		return l.f.Sync()
	}
	return nil
}

// Size returns the log's current size in bytes, header included.
func (l *Log) Size() int64 { return l.size }

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Sync flushes the log to stable storage regardless of policy.
func (l *Log) Sync() error { return l.f.Sync() }

// RenameInto moves the open log's backing file to newPath (atomically, via
// rename) and updates Path. The descriptor is untouched — appending
// continues seamlessly — which lets the checkpoint rotation keep only this
// metadata operation inside its critical section and do every blocking
// create/fsync/close outside it. Durability of the new name follows the
// caller's next SyncDir, exactly like Create's.
func (l *Log) RenameInto(newPath string) error {
	if err := os.Rename(l.path, newPath); err != nil {
		return err
	}
	l.path = newPath
	return nil
}

// Close flushes and closes the log file.
func (l *Log) Close() error {
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// syncDir fsyncs the directory containing path, making a just-created or
// just-renamed entry durable.
func syncDir(path string) error {
	dir := "."
	if i := lastSlash(path); i >= 0 {
		dir = path[:i+1]
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	// Some filesystems reject fsync on directories; the rename itself is
	// still atomic there, so degrade silently rather than failing the write.
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return err
	}
	return nil
}

func lastSlash(path string) int {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' || path[i] == os.PathSeparator {
			return i
		}
	}
	return -1
}

// SyncDir exposes the directory fsync for the checkpoint machinery (snapshot
// rename durability lives in the same package-level discipline as the log's).
func SyncDir(path string) error { return syncDir(path) }
