package wal

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testRecords() []Record {
	return []Record{
		{PreVersion: 0, Ops: []Op{
			{Kind: OpInsertEdge, U: 1, V: 2},
			{Kind: OpAddKeyword, U: 3, Word: "database"},
		}},
		{PreVersion: 2, Ops: []Op{
			{Kind: OpRemoveEdge, U: 1, V: 2},
		}},
		{PreVersion: 3, Ops: []Op{
			{Kind: OpRemoveKeyword, U: 3, Word: "database"},
			{Kind: OpAddKeyword, U: 4, Word: ""},
			{Kind: OpInsertEdge, U: 0, V: 7},
		}},
	}
}

func appendAll(t *testing.T, l *Log, recs []Record) {
	t.Helper()
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path, SyncAlways)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	want := testRecords()
	appendAll(t, l, want)
	size := l.Size()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != size {
		t.Fatalf("Size() = %d, file is %d bytes", size, fi.Size())
	}

	var got []Record
	l2, n, err := Open(path, SyncNever, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l2.Close()
	if n != len(want) {
		t.Fatalf("Open replayed %d records, want %d", n, len(want))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed records differ:\n got %+v\nwant %+v", got, want)
	}
	if l2.Size() != size {
		t.Fatalf("reopened Size() = %d, want %d", l2.Size(), size)
	}

	// Appending after reopen must extend, not clobber.
	extra := Record{PreVersion: 6, Ops: []Op{{Kind: OpInsertEdge, U: 9, V: 10}}}
	if err := l2.Append(extra); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	got = got[:0]
	n, err = Replay(path, func(r Record) error { got = append(got, r); return nil })
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if n != len(want)+1 || !reflect.DeepEqual(got[len(want)], extra) {
		t.Fatalf("after reopen+append got %d records %+v", n, got)
	}
}

func TestTornTailTruncated(t *testing.T) {
	// Cutting the file at every byte boundary inside the last record must
	// always recover the first two records and truncate the damage.
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	appendAll(t, l, recs[:2])
	intact := l.Size()
	appendAll(t, l, recs[2:])
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := intact + 1; cut < int64(len(full)); cut++ {
		p := filepath.Join(t.TempDir(), "torn.log")
		if err := os.WriteFile(p, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var n int
		l2, replayed, err := Open(p, SyncNever, func(Record) error { n++; return nil })
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		if replayed != 2 || n != 2 {
			t.Fatalf("cut=%d: replayed %d records, want 2", cut, replayed)
		}
		if l2.Size() != intact {
			t.Fatalf("cut=%d: Size() = %d, want %d", cut, l2.Size(), intact)
		}
		// The torn bytes must be gone so the next append starts clean.
		if fi, _ := os.Stat(p); fi.Size() != intact {
			t.Fatalf("cut=%d: file still %d bytes after truncation", cut, fi.Size())
		}
		l2.Close()
	}
}

func TestCorruptPayloadStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	appendAll(t, l, recs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the second record's payload.
	off := headerSize
	rec1Len := binary.LittleEndian.Uint32(data[off:])
	off += 8 + int(rec1Len) // past record 1
	data[off+8+2] ^= 0xff   // inside record 2's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var n int
	_, replayed, err := Open(path, SyncNever, func(Record) error { n++; return nil })
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if replayed != 1 || n != 1 {
		t.Fatalf("replayed %d records past a CRC failure, want 1", replayed)
	}
}

func TestBadHeaderRejected(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string][]byte{
		"empty":     {},
		"short":     []byte("ACQ"),
		"bad-magic": []byte("NOPE\x01\x00\x00\x00"),
		"bad-ver":   append(bytes.Clone(magic[:]), 99, 0, 0, 0),
	} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, content, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Open(p, SyncNever, nil); err == nil {
			t.Errorf("%s: Open accepted a non-WAL file", name)
		}
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for s, want := range map[string]SyncPolicy{"": SyncAlways, "always": SyncAlways, "never": SyncNever} {
		got, err := ParseSyncPolicy(s)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("ParseSyncPolicy accepted an unknown policy")
	}
	if SyncAlways.String() != "always" || SyncNever.String() != "never" {
		t.Error("SyncPolicy.String round-trip broken")
	}
}

func TestReplayErrorAborts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Create(path, SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, testRecords())
	l.Close()
	wantErr := os.ErrClosed // any sentinel
	_, _, err = Open(path, SyncNever, func(Record) error { return wantErr })
	if err != wantErr {
		t.Fatalf("Open returned %v, want the replay callback's error", err)
	}
}
