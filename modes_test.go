package acq_test

// Differential tests for the unified Search surface across the two read
// representations: every Query.Mode must return results byte-identical on
// the direct Graph path (mutable slice-of-slices master) and the Snapshot
// path (frozen CSR copy). This is the acceptance gate for the frozen read
// path — publishing a snapshot must never change an answer.

import (
	"errors"
	"reflect"
	"testing"

	acq "github.com/acq-search/acq"
)

// modeCase is one Query.Mode exercised by the differential tests.
type modeCase struct {
	name  string
	query acq.Query
}

func modeCases() []modeCase {
	return []modeCase{
		{
			name:  "core",
			query: acq.Query{Vertex: "Jack", K: 3, Mode: acq.ModeCore},
		},
		{
			name:  "fixed",
			query: acq.Query{Vertex: "Jack", K: 3, Keywords: []string{"research", "sports"}, Mode: acq.ModeFixed},
		},
		{
			name: "threshold",
			query: acq.Query{
				Vertex: "Jack", K: 3,
				Keywords: []string{"research", "sports", "yoga", "web"},
				Mode:     acq.ModeThreshold, Theta: 0.5,
			},
		},
		{
			name:  "clique",
			query: acq.Query{Vertex: "Jack", K: 4, Mode: acq.ModeClique},
		},
		{
			name:  "similar",
			query: acq.Query{Vertex: "Jack", K: 3, Mode: acq.ModeSimilar, Tau: 0.4},
		},
		{
			name:  "truss",
			query: acq.Query{Vertex: "Jack", K: 4, Mode: acq.ModeTruss},
		},
		{
			name:  "truss-maxhops",
			query: acq.Query{Vertex: "Jack", K: 4, MaxHops: 1, Mode: acq.ModeTruss},
		},
	}
}

// TestModesFrozenMatchesMutable is the differential acceptance test: for
// every mode, the direct Graph path and the Snapshot path (with and without
// the result cache, so the equality is not an artifact of cache cloning)
// return deep-equal results.
func TestModesFrozenMatchesMutable(t *testing.T) {
	g := figure1Graph(t)
	g.BuildIndex()
	gNoCache := figure1Graph(t)
	gNoCache.BuildIndex()
	gNoCache.SetResultCacheSize(-1)

	for _, tc := range modeCases() {
		t.Run(tc.name, func(t *testing.T) {
			direct, dErr := g.Search(bgCtx, tc.query)
			snapRes, sErr := g.Snapshot().Search(bgCtx, tc.query)
			if (dErr == nil) != (sErr == nil) {
				t.Fatalf("error mismatch: direct %v, snapshot %v", dErr, sErr)
			}
			if dErr != nil {
				return
			}
			if !reflect.DeepEqual(direct, snapRes) {
				t.Fatalf("snapshot diverged from direct path:\n%+v\nvs\n%+v", snapRes, direct)
			}
			uncached, ncErr := gNoCache.Snapshot().Search(bgCtx, tc.query)
			if ncErr != nil {
				t.Fatalf("uncached snapshot search: %v", ncErr)
			}
			if !reflect.DeepEqual(direct, uncached) {
				t.Fatalf("uncached snapshot diverged:\n%+v\nvs\n%+v", uncached, direct)
			}
		})
	}
}

// TestModesFrozenMatchesMutableOnSynthetic repeats the differential check on
// a synthetic dataset workload, covering vertices whose neighbourhood
// structure is richer than the hand-built Figure 1 graph.
func TestModesFrozenMatchesMutableOnSynthetic(t *testing.T) {
	g, err := acq.Synthetic("dblp", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	g.BuildIndex()
	var queries []int32
	for v := int32(0); int(v) < g.NumVertices() && len(queries) < 6; v++ {
		if c, _ := g.CoreNumber(v); c >= 4 {
			queries = append(queries, v)
		}
	}
	if len(queries) == 0 {
		t.Fatal("no queryable vertices")
	}
	snap := g.Snapshot()
	for _, qv := range queries {
		for _, mode := range []acq.Mode{acq.ModeCore, acq.ModeFixed, acq.ModeThreshold, acq.ModeSimilar} {
			q := acq.Query{VertexID: qv, K: 4, Mode: mode}
			switch mode {
			case acq.ModeThreshold:
				q.Theta = 0.5
				q.Keywords = g.Keywords(qv)
			case acq.ModeSimilar:
				q.Tau = 0.3
			case acq.ModeFixed:
				kws := g.Keywords(qv)
				if len(kws) > 2 {
					kws = kws[:2]
				}
				q.Keywords = kws
			}
			direct, dErr := g.Search(bgCtx, q)
			snapped, sErr := snap.Search(bgCtx, q)
			if (dErr == nil) != (sErr == nil) {
				t.Fatalf("q=%d mode=%s: error mismatch %v vs %v", qv, mode, dErr, sErr)
			}
			if dErr == nil && !reflect.DeepEqual(direct, snapped) {
				t.Fatalf("q=%d mode=%s: direct and snapshot disagree", qv, mode)
			}
		}
	}
}

// TestSearchBadMode pins the unknown-mode error.
func TestSearchBadMode(t *testing.T) {
	g := figure1Graph(t)
	g.BuildIndex()
	_, err := g.Search(bgCtx, acq.Query{Vertex: "Jack", K: 3, Mode: "quantum"})
	if err == nil || !errors.Is(err, acq.ErrBadMode) {
		t.Fatalf("err = %v, want ErrBadMode", err)
	}
	// And through the snapshot path (errors are never cached).
	_, err = g.Snapshot().Search(bgCtx, acq.Query{Vertex: "Jack", K: 3, Mode: "quantum"})
	if err == nil || !errors.Is(err, acq.ErrBadMode) {
		t.Fatalf("snapshot err = %v, want ErrBadMode", err)
	}
}

// TestBadModeNeverAliasesCache is a regression test: an unknown mode must
// fail even when the equivalent ModeCore query is already cached — the
// invalid query must not share the cached entry's key and return a wrong
// success.
func TestBadModeNeverAliasesCache(t *testing.T) {
	g := figure1Graph(t)
	g.BuildIndex()
	snap := g.Snapshot()
	q := acq.Query{Vertex: "Jack", K: 3}
	if _, err := snap.Search(bgCtx, q); err != nil { // warm the core entry
		t.Fatal(err)
	}
	q.Mode = "bogus"
	if _, err := snap.Search(bgCtx, q); !errors.Is(err, acq.ErrBadMode) {
		t.Fatalf("cached-alias err = %v, want ErrBadMode", err)
	}
	q.Mode = ""
	q.Algorithm = "quantum"
	if _, err := snap.Search(bgCtx, q); !errors.Is(err, acq.ErrBadAlgorithm) {
		t.Fatalf("cached-alias err = %v, want ErrBadAlgorithm", err)
	}
}

// TestBadAlgorithmRejectedInEveryMode: the unknown-algorithm contract holds
// across the whole mode dispatch, not just ModeCore — a typo'd algo must
// never silently fall through to the indexed variant path.
func TestBadAlgorithmRejectedInEveryMode(t *testing.T) {
	g := figure1Graph(t)
	g.BuildIndex()
	for _, mode := range []acq.Mode{acq.ModeCore, acq.ModeFixed, acq.ModeThreshold, acq.ModeClique, acq.ModeSimilar, acq.ModeTruss} {
		q := acq.Query{Vertex: "Jack", K: 3, Mode: mode, Theta: 0.5, Tau: 0.5, Algorithm: "quantum"}
		if _, err := g.Search(bgCtx, q); !errors.Is(err, acq.ErrBadAlgorithm) {
			t.Fatalf("mode %s: err = %v, want ErrBadAlgorithm", mode, err)
		}
	}
}

// TestSearcherInterface pins the Searcher contract: both Graph and Snapshot
// satisfy it and evaluate identically through the interface.
func TestSearcherInterface(t *testing.T) {
	g := figure1Graph(t)
	g.BuildIndex()
	q := acq.Query{Vertex: "Jack", K: 3}
	var want acq.Result
	for i, s := range []acq.Searcher{g, g.Snapshot()} {
		res, err := s.Search(bgCtx, q)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = res
			continue
		}
		if !reflect.DeepEqual(res, want) {
			t.Fatalf("Searcher implementations disagree: %+v vs %+v", res, want)
		}
		batch := s.SearchBatch(bgCtx, []acq.Query{q, q}, acq.BatchOptions{Workers: 2})
		if len(batch) != 2 || batch[0].Err != nil || !reflect.DeepEqual(batch[0].Result, want) {
			t.Fatalf("SearchBatch through Searcher: %+v", batch)
		}
	}
}
