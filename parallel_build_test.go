package acq_test

import (
	"reflect"
	"testing"

	acq "github.com/acq-search/acq"
)

// TestBuildIndexWorkersEquivalence drives the public API end to end: two
// copies of the same synthetic graph, one indexed serially and one with a
// forced 8-way parallel build, must agree on every statistic and answer an
// identical batch of queries — and the build telemetry must report the
// worker count that was actually used.
func TestBuildIndexWorkersEquivalence(t *testing.T) {
	serial, err := acq.Synthetic("dblp", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := acq.Synthetic("dblp", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	serial.BuildIndexOpts(acq.BuildOptions{Workers: 1})
	parallel.SetBuildWorkers(8)
	parallel.BuildIndex()

	if d, w := serial.IndexBuildStats(); w != 1 || d <= 0 {
		t.Fatalf("serial build stats = (%v, %d), want workers 1 and positive duration", d, w)
	}
	if d, w := parallel.IndexBuildStats(); w != 8 || d <= 0 {
		t.Fatalf("parallel build stats = (%v, %d), want workers 8 and positive duration", d, w)
	}
	if !reflect.DeepEqual(serial.Stats(), parallel.Stats()) {
		t.Fatalf("stats differ:\n%+v\n%+v", serial.Stats(), parallel.Stats())
	}

	k := serial.Stats().KMax / 2
	if k < 2 {
		k = 2
	}
	var queries []acq.Query
	for v := int32(0); int(v) < serial.NumVertices() && len(queries) < 32; v++ {
		if c, err := serial.CoreNumber(v); err == nil && c >= k {
			queries = append(queries, acq.Query{VertexID: v, K: k})
		}
	}
	if len(queries) == 0 {
		t.Skip("no suitable query vertices at this scale")
	}
	rs := serial.SearchBatch(bgCtx, queries, acq.BatchOptions{Workers: 1})
	rp := parallel.SearchBatch(bgCtx, queries, acq.BatchOptions{Workers: 4})
	for i := range rs {
		if (rs[i].Err == nil) != (rp[i].Err == nil) {
			t.Fatalf("query %d: errors differ: %v vs %v", i, rs[i].Err, rp[i].Err)
		}
		if !reflect.DeepEqual(rs[i].Result, rp[i].Result) {
			t.Fatalf("query %d: results differ", i)
		}
	}
}

// TestBuildIndexOptsBasicMethod keeps the Method field wired: a basic-method
// build through the new options API must serve queries like the advanced one.
func TestBuildIndexOptsBasicMethod(t *testing.T) {
	g, err := acq.Synthetic("flickr", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	g.BuildIndexOpts(acq.BuildOptions{Method: acq.IndexBasic})
	if !g.HasIndex() {
		t.Fatal("basic-method build left no index")
	}
	if _, w := g.IndexBuildStats(); w != 1 {
		t.Fatalf("basic build reported %d workers, want 1 (always serial)", w)
	}
}
