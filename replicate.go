package acq

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/acq-search/acq/internal/dataio"
	"github.com/acq-search/acq/internal/wal"
)

// Replication rides entirely on the durability artefacts: the mapped snapshot
// is the bootstrap blob a follower downloads, and the CRC-framed WAL is the
// incremental stream it replays to stay caught up. A leader therefore needs
// nothing beyond an armed durability directory — SnapshotBlob streams the
// current snapshot.acqm and ReplicationTail reads the effective-mutation
// records after a given version straight out of wal.log (and any wal.prev-*
// a checkpoint left mid-rotation). Both are plain file reads against
// immutable-once-written bytes: the snapshot is only ever replaced by an
// atomic rename (the served descriptor survives it), and WAL records are
// appended with a single write call, so a concurrent reader sees either a
// whole record or a torn tail it stops at.
//
// A follower applies batches through ApplyReplicated, which enforces the
// same version-continuity and effectiveness invariants as crash recovery:
// every replicated op changed the graph on the leader, so it must change the
// follower's graph too, and the version must advance in lockstep. Any
// violation reports ErrReplicaDiverged — the follower's cue to throw its
// state away and re-bootstrap from a fresh snapshot.

// ErrReplicaDiverged reports a replicated batch that does not continue the
// local graph's history: the version did not line up, or an op that was
// effective on the leader was a no-op here. Recovery is a fresh bootstrap.
var ErrReplicaDiverged = errors.New("acq: replica diverged from the leader's history")

// DefaultReplicationTailOps bounds the effective ops returned by one
// ReplicationTail call when the caller passes maxOps <= 0. A follower that
// is far behind catches up over several polls instead of one unbounded
// response.
const DefaultReplicationTailOps = 1 << 14

// ReplicationBatch is one leader mutation batch as shipped to followers:
// the graph version it applies at and its effective ops, in application
// order. Applying it to a graph at exactly PreVersion advances that graph to
// PreVersion + len(Ops).
type ReplicationBatch struct {
	PreVersion uint64
	Ops        []Mutation
}

// ReplicationTailResult is the outcome of one tail read.
type ReplicationTailResult struct {
	// Batches continue the follower's history starting exactly at the
	// requested version; empty when the follower is already caught up.
	Batches []ReplicationBatch
	// Reset reports that no contiguous tail from the requested version exists
	// anymore — the records were folded into a newer snapshot, or the
	// follower is ahead of this leader's history. The follower must
	// re-bootstrap from SnapshotBlob.
	Reset bool
}

// SnapshotBlob opens the current on-disk snapshot for streaming to a
// bootstrapping follower: the mapped container bytes, the graph version they
// capture, and their size (for Content-Length). The descriptor stays valid
// even if a checkpoint atomically replaces the file mid-transfer. Requires
// durability (ErrNotDurable otherwise) — replication ships the durability
// artefacts, it does not invent a second format.
func (G *Graph) SnapshotBlob() (rc io.ReadCloser, version uint64, size int64, err error) {
	d := G.dur
	if d == nil {
		return nil, 0, 0, ErrNotDurable
	}
	f, err := os.Open(filepath.Join(d.dir, snapshotFile))
	if err != nil {
		return nil, 0, 0, err
	}
	version, err = dataio.PeekMappedVersion(f)
	if err != nil {
		f.Close()
		return nil, 0, 0, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, 0, err
	}
	return f, version, fi.Size(), nil
}

// errTailGap is the scan-internal signal that the on-disk records do not
// continue contiguously from the requested version.
var errTailGap = errors.New("acq: replication tail gap")

// errTailFull stops a scan that collected maxOps effective ops.
var errTailFull = errors.New("acq: replication tail full")

// ReplicationTail reads the effective-mutation batches after version from,
// up to maxOps ops (DefaultReplicationTailOps when <= 0). An empty result
// with Reset false means the follower is caught up (for now); Reset true
// means the tail from that version is gone and only a fresh SnapshotBlob
// bootstrap can continue. Requires durability (ErrNotDurable otherwise).
//
// The scan races benignly with checkpoints: a rotation can move records
// between files mid-scan, which at worst surfaces as a gap. One retry
// absorbs that window; a gap on the second pass is reported as Reset.
func (G *Graph) ReplicationTail(from uint64, maxOps int) (ReplicationTailResult, error) {
	d := G.dur
	if d == nil {
		return ReplicationTailResult{}, ErrNotDurable
	}
	if maxOps <= 0 {
		maxOps = DefaultReplicationTailOps
	}
	cur := G.Version()
	if from > cur {
		// The follower has history this leader does not: a divergent or
		// rebuilt leader. Only a bootstrap reconciles that.
		return ReplicationTailResult{Reset: true}, nil
	}
	if from == cur {
		return ReplicationTailResult{}, nil
	}
	for attempt := 0; ; attempt++ {
		batches, gap, err := scanTail(d.dir, from, maxOps)
		if err != nil {
			return ReplicationTailResult{}, err
		}
		if gap && attempt == 0 {
			continue // likely a rotation mid-scan; one clean retry
		}
		if gap || len(batches) == 0 {
			// from < cur but nothing on disk continues it: the records were
			// checkpointed away (or a settle deleted the rotated logs).
			return ReplicationTailResult{Reset: true}, nil
		}
		return ReplicationTailResult{Batches: batches}, nil
	}
}

// scanTail walks the rotated logs (version order) then the active log,
// collecting the contiguous run of ops after from. A record that straddles
// from contributes only its suffix — checkpoints capture at batch
// boundaries, but a defensive slice costs nothing.
func scanTail(dir string, from uint64, maxOps int) (batches []ReplicationBatch, gap bool, err error) {
	prevs, err := sortedWalPrevs(dir)
	if err != nil {
		return nil, false, err
	}
	paths := append(prevs, filepath.Join(dir, walFile))
	expect := from
	total := 0
	for _, p := range paths {
		_, err := wal.Replay(p, func(rec wal.Record) error {
			post := rec.PreVersion + uint64(len(rec.Ops))
			if post <= expect {
				return nil // fully behind the follower already
			}
			if rec.PreVersion > expect {
				return errTailGap
			}
			ops := rec.Ops[expect-rec.PreVersion:]
			batches = append(batches, ReplicationBatch{PreVersion: expect, Ops: mutationsOfWalOps(ops)})
			expect = post
			total += len(ops)
			if total >= maxOps {
				return errTailFull
			}
			return nil
		})
		switch {
		case err == nil, errors.Is(err, os.ErrNotExist):
			// A missing rotated log was deleted by a finishing checkpoint;
			// continuity tracking catches any hole that opens.
		case errors.Is(err, errTailGap):
			return nil, true, nil
		case errors.Is(err, errTailFull):
			return batches, false, nil
		default:
			return nil, false, err
		}
	}
	return batches, false, nil
}

// ApplyReplicated applies one leader batch to a follower graph, enforcing
// the replay invariants: the graph must stand exactly at the batch's
// PreVersion, and every op must be effective (it changed the leader, so a
// no-op here means the states differ). Violations report ErrReplicaDiverged
// without applying further ops; the caller re-bootstraps. On a durable
// follower the batch is WAL-logged locally by the same ApplyMutations path
// that logs leader writes, so follower restarts recover locally and only
// fetch the tail they missed.
func (G *Graph) ApplyReplicated(b ReplicationBatch) error {
	if len(b.Ops) == 0 {
		return nil
	}
	if cur := G.Version(); cur != b.PreVersion {
		return fmt.Errorf("%w: batch at version %d, graph at %d", ErrReplicaDiverged, b.PreVersion, cur)
	}
	results := G.ApplyMutations(b.Ops)
	for i, res := range results {
		if res.Err != nil || !res.Changed {
			return fmt.Errorf("%w: op %d of batch at version %d not effective (err=%v)", ErrReplicaDiverged, i, b.PreVersion, res.Err)
		}
	}
	if got, want := G.Version(), b.PreVersion+uint64(len(b.Ops)); got != want {
		return fmt.Errorf("%w: version %d after batch, want %d", ErrReplicaDiverged, got, want)
	}
	return nil
}
