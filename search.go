package acq

import (
	"fmt"

	"github.com/acq-search/acq/internal/core"
	"github.com/acq-search/acq/internal/graph"
	"github.com/acq-search/acq/internal/kcore"
)

// Algorithm selects an ACQ evaluation strategy.
type Algorithm string

const (
	// AlgoDec is the decremental algorithm — the paper's fastest; default.
	AlgoDec Algorithm = "dec"
	// AlgoIncS is the space-efficient incremental algorithm.
	AlgoIncS Algorithm = "inc-s"
	// AlgoIncT is the time-efficient incremental algorithm.
	AlgoIncT Algorithm = "inc-t"
	// AlgoBasicG is the index-free baseline that filters inside the k-ĉore.
	AlgoBasicG Algorithm = "basic-g"
	// AlgoBasicW is the index-free baseline that filters the whole graph.
	AlgoBasicW Algorithm = "basic-w"
)

// Query describes one attributed community query.
type Query struct {
	// Vertex is the query vertex's label; when empty, VertexID is used.
	Vertex string
	// VertexID is the query vertex's dense ID (used when Vertex == "").
	VertexID int32
	// K is the minimum degree bound (structure cohesiveness); must be ≥ 1.
	K int
	// Keywords is the input keyword set S. nil or empty means S = W(q),
	// the paper's default. For Search, keywords q does not carry are
	// ignored; for SearchFixed/SearchThreshold they are honoured as given.
	Keywords []string
	// Algorithm picks the evaluation strategy; empty means AlgoDec.
	// Index-free algorithms (basic-g, basic-w) work without BuildIndex.
	Algorithm Algorithm
	// DisableInvertedLists turns off the CL-tree inverted lists during
	// keyword-checking (the paper's Inc-S*/Inc-T* ablation).
	DisableInvertedLists bool
	// FuzzDistance, when > 0, expands Keywords with every dictionary word
	// within that Levenshtein distance before the search — typo-tolerant
	// keyword queries ("reserch" still finds "research"). Ignored when
	// Keywords is empty. Clamped to 3.
	FuzzDistance int
	// MaxHops bounds the hop distance from the query vertex measured inside
	// the community — the (k,d)-truss constraint. Only honoured by
	// SearchTruss; 0 means unbounded.
	MaxHops int
}

// Community is one attributed community.
type Community struct {
	// Label is the AC-label: the keywords shared by every member.
	Label []string
	// Members holds the member labels (or "#<id>" for unlabelled vertices).
	Members []string
	// MemberIDs holds the member vertex IDs, sorted.
	MemberIDs []int32
}

// Result is the outcome of a community search.
type Result struct {
	// Communities holds one community per maximal shared keyword set.
	Communities []Community
	// LabelSize is the number of shared keywords (0 for a fallback).
	LabelSize int
	// Fallback is true when no keywords could be shared and the plain
	// k-ĉore was returned instead.
	Fallback bool
}

// view is the read-only pairing of a graph with its (possibly nil) CL-tree
// that every search algorithm runs against. Both Graph (the live, mutable
// master copy) and Snapshot (an immutable published copy) evaluate queries
// through a view, so the two paths cannot drift apart.
type view struct {
	g    *graph.Graph
	tree *core.Tree
}

// view captures the master graph and index. The returned view aliases live
// state: it is only safe to query while no mutator runs concurrently. Use
// Snapshot for lock-free reads under concurrent updates.
func (G *Graph) view() view { return view{g: G.g, tree: G.tree} }

// Search answers an ACQ (the paper's Problem 1): among the connected
// subgraphs containing q with minimum internal degree ≥ k, return those
// sharing the largest subset of S.
//
// Search reads the live graph without synchronisation; it is safe for any
// number of concurrent callers, but not concurrently with mutators. For
// serving reads during updates, use Snapshot().Search.
func (G *Graph) Search(q Query) (Result, error) { return G.view().search(q) }

// SearchFixed answers Variant 1 (Appendix G): every member must contain the
// whole keyword set. An empty Communities list (with nil error) means no
// such community exists.
func (G *Graph) SearchFixed(q Query) (Result, error) { return G.view().searchFixed(q) }

// SearchThreshold answers Variant 2 (Appendix G): every member must contain
// at least ⌈θ·|S|⌉ of the keywords, θ ∈ (0, 1].
func (G *Graph) SearchThreshold(q Query, theta float64) (Result, error) {
	return G.view().searchThreshold(q, theta)
}

// SearchClique answers the ACQ under k-clique percolation cohesiveness
// (conclusion extension): communities are unions of overlapping cliques of
// size ≥ k reachable from q sharing a maximal keyword subset. Requires an
// index; k ≥ 2.
func (G *Graph) SearchClique(q Query) (Result, error) { return G.view().searchClique(q) }

// SearchSimilar returns the connected community of q (minimum degree ≥ k)
// whose members' keyword sets all have Jaccard similarity ≥ tau to S
// (default W(q)) — the Jaccard keyword cohesiveness the paper's conclusion
// proposes. Requires an index unless Algorithm is AlgoBasicG.
func (G *Graph) SearchSimilar(q Query, tau float64) (Result, error) {
	return G.view().searchSimilar(q, tau)
}

// SearchTruss answers the ACQ under k-truss structure cohesiveness (the
// extension the paper's conclusion calls for): every community edge must
// close at least k−2 triangles inside the community, a strictly stronger
// requirement than minimum degree. Requires an index; k ≥ 2.
func (G *Graph) SearchTruss(q Query) (Result, error) { return G.view().searchTruss(q) }

func (v view) search(q Query) (Result, error) {
	qv, s, err := v.resolve(q)
	if err != nil {
		return Result{}, err
	}
	opt := core.DefaultOptions()
	opt.UseInvertedLists = !q.DisableInvertedLists

	var res core.Result
	switch q.Algorithm {
	case AlgoBasicG:
		res, err = core.BasicG(v.g, qv, q.K, s, opt)
	case AlgoBasicW:
		res, err = core.BasicW(v.g, qv, q.K, s, opt)
	case AlgoIncS, AlgoIncT, AlgoDec, "":
		if v.tree == nil {
			return Result{}, ErrNoIndex
		}
		switch q.Algorithm {
		case AlgoIncS:
			res, err = core.IncS(v.tree, qv, q.K, s, opt)
		case AlgoIncT:
			res, err = core.IncT(v.tree, qv, q.K, s, opt)
		default:
			res, err = core.Dec(v.tree, qv, q.K, s, opt)
		}
	default:
		return Result{}, fmt.Errorf("acq: unknown algorithm %q", q.Algorithm)
	}
	if err != nil {
		return Result{}, err
	}
	return v.render(res), nil
}

func (v view) searchFixed(q Query) (Result, error) {
	qv, s, err := v.resolve(q)
	if err != nil {
		return Result{}, err
	}
	var res core.Result
	switch q.Algorithm {
	case AlgoBasicG:
		res, err = core.BasicGV1(v.g, qv, q.K, s)
	case AlgoBasicW:
		res, err = core.BasicWV1(v.g, qv, q.K, s)
	default:
		if v.tree == nil {
			return Result{}, ErrNoIndex
		}
		res, err = core.SW(v.tree, qv, q.K, s)
	}
	if err != nil {
		return Result{}, err
	}
	return v.render(res), nil
}

func (v view) searchThreshold(q Query, theta float64) (Result, error) {
	qv, s, err := v.resolve(q)
	if err != nil {
		return Result{}, err
	}
	var res core.Result
	switch q.Algorithm {
	case AlgoBasicG:
		res, err = core.BasicGV2(v.g, qv, q.K, s, theta)
	case AlgoBasicW:
		res, err = core.BasicWV2(v.g, qv, q.K, s, theta)
	default:
		if v.tree == nil {
			return Result{}, ErrNoIndex
		}
		res, err = core.SWT(v.tree, qv, q.K, s, theta)
	}
	if err != nil {
		return Result{}, err
	}
	return v.render(res), nil
}

func (v view) searchClique(q Query) (Result, error) {
	qv, s, err := v.resolve(q)
	if err != nil {
		return Result{}, err
	}
	if v.tree == nil {
		return Result{}, ErrNoIndex
	}
	res, err := core.CliqueSearch(v.tree, qv, q.K, s)
	if err != nil {
		return Result{}, err
	}
	return v.render(res), nil
}

func (v view) searchSimilar(q Query, tau float64) (Result, error) {
	qv, s, err := v.resolve(q)
	if err != nil {
		return Result{}, err
	}
	var res core.Result
	if q.Algorithm == AlgoBasicG {
		res, err = core.BasicGJ(v.g, qv, q.K, s, tau)
	} else {
		if v.tree == nil {
			return Result{}, ErrNoIndex
		}
		res, err = core.SJ(v.tree, qv, q.K, s, tau)
	}
	if err != nil {
		return Result{}, err
	}
	return v.render(res), nil
}

func (v view) searchTruss(q Query) (Result, error) {
	qv, s, err := v.resolve(q)
	if err != nil {
		return Result{}, err
	}
	if v.tree == nil {
		return Result{}, ErrNoIndex
	}
	res, err := core.TrussSearchD(v.tree, qv, q.K, q.MaxHops, s)
	if err != nil {
		return Result{}, err
	}
	return v.render(res), nil
}

// resolve maps the public query to internal identifiers. Keywords unknown to
// the dictionary cannot appear in any community and are dropped.
func (v view) resolve(q Query) (graph.VertexID, []graph.KeywordID, error) {
	var qv graph.VertexID
	if q.Vertex != "" {
		vid, ok := v.g.VertexByLabel(q.Vertex)
		if !ok {
			return 0, nil, fmt.Errorf("%w: label %q", ErrVertexNotFound, q.Vertex)
		}
		qv = vid
	} else {
		if int(q.VertexID) < 0 || int(q.VertexID) >= v.g.NumVertices() {
			return 0, nil, fmt.Errorf("%w: id %d", ErrVertexNotFound, q.VertexID)
		}
		qv = graph.VertexID(q.VertexID)
	}
	var s []graph.KeywordID
	if len(q.Keywords) > 0 {
		if q.FuzzDistance > 0 {
			s = core.ExpandByEditDistance(v.g.Dict(), q.Keywords, q.FuzzDistance)
		} else {
			s, _ = v.g.Dict().LookupAll(q.Keywords)
		}
		if len(s) == 0 {
			// All requested keywords are unknown: keep a non-nil empty set so
			// the query semantics stay "no shared keywords possible" rather
			// than defaulting to W(q).
			s = []graph.KeywordID{}
		}
	}
	return qv, s, nil
}

func (v view) render(res core.Result) Result {
	out := Result{LabelSize: res.LabelSize, Fallback: res.Fallback}
	for _, c := range res.Communities {
		comm := Community{
			Label:     make([]string, 0, len(c.Label)),
			Members:   make([]string, 0, len(c.Vertices)),
			MemberIDs: make([]int32, 0, len(c.Vertices)),
		}
		for _, w := range c.Label {
			comm.Label = append(comm.Label, v.g.Dict().Word(w))
		}
		for _, vid := range c.Vertices {
			name := v.g.Label(vid)
			if name == "" {
				name = fmt.Sprintf("#%d", vid)
			}
			comm.Members = append(comm.Members, name)
			comm.MemberIDs = append(comm.MemberIDs, int32(vid))
		}
		out.Communities = append(out.Communities, comm)
	}
	return out
}

// stats computes summary statistics for the view's graph and index.
func (v view) stats() Stats {
	s := Stats{
		Vertices:    v.g.NumVertices(),
		Edges:       v.g.NumEdges(),
		AvgDegree:   v.g.AvgDegree(),
		AvgKeywords: v.g.AvgKeywords(),
		Keywords:    v.g.Dict().Size(),
	}
	if v.tree != nil {
		s.KMax = int(v.tree.KMax)
		s.IndexNodes = v.tree.NumNodes()
		s.IndexHeight = v.tree.Height()
	} else {
		s.KMax = int(kcore.MaxCore(kcore.Decompose(v.g)))
	}
	return s
}

// coreNumber returns the core number of a vertex (requires an index).
func (v view) coreNumber(vid int32) (int, error) {
	if v.tree == nil {
		return 0, ErrNoIndex
	}
	if int(vid) < 0 || int(vid) >= v.g.NumVertices() {
		return 0, fmt.Errorf("%w: id %d", ErrVertexNotFound, vid)
	}
	return int(v.tree.Core[vid]), nil
}
