package acq

import (
	"context"
	"errors"
	"fmt"
	"math"

	"github.com/acq-search/acq/internal/cancel"
	"github.com/acq-search/acq/internal/core"
	"github.com/acq-search/acq/internal/graph"
	"github.com/acq-search/acq/internal/kcore"
)

// Algorithm selects an ACQ evaluation strategy.
type Algorithm string

const (
	// AlgoDec is the decremental algorithm — the paper's fastest; default.
	AlgoDec Algorithm = "dec"
	// AlgoIncS is the space-efficient incremental algorithm.
	AlgoIncS Algorithm = "inc-s"
	// AlgoIncT is the time-efficient incremental algorithm.
	AlgoIncT Algorithm = "inc-t"
	// AlgoBasicG is the index-free baseline that filters inside the k-ĉore.
	AlgoBasicG Algorithm = "basic-g"
	// AlgoBasicW is the index-free baseline that filters the whole graph.
	AlgoBasicW Algorithm = "basic-w"
)

// Mode selects the community model a Query evaluates. The zero value (or
// ModeCore) is the paper's Problem 1; the other modes fold the former
// SearchFixed/SearchThreshold/SearchClique/SearchSimilar/SearchTruss
// entrypoints into the one Search surface.
type Mode string

const (
	// ModeCore (also the zero value "") answers the paper's Problem 1:
	// minimum-degree-k communities sharing a maximal subset of S.
	ModeCore Mode = "core"
	// ModeFixed is Variant 1 (Appendix G): every member must contain the
	// whole keyword set S. Empty Communities (nil error) means none exists.
	ModeFixed Mode = "fixed"
	// ModeThreshold is Variant 2 (Appendix G): every member must contain at
	// least ⌈Theta·|S|⌉ of the keywords, Query.Theta ∈ (0, 1].
	ModeThreshold Mode = "threshold"
	// ModeClique uses k-clique percolation structure cohesiveness:
	// communities are unions of overlapping cliques of size ≥ k reachable
	// from q sharing a maximal keyword subset. Requires an index; k ≥ 2.
	ModeClique Mode = "clique"
	// ModeSimilar requires every member's keyword set to have Jaccard
	// similarity ≥ Query.Tau to S (default W(q)), Tau ∈ (0, 1]. Requires an
	// index unless Algorithm is AlgoBasicG.
	ModeSimilar Mode = "similar"
	// ModeTruss uses k-truss structure cohesiveness: every community edge
	// must close ≥ k−2 triangles inside the community. Query.MaxHops > 0
	// additionally bounds the in-community hop distance from q (the
	// (k,d)-truss). Requires an index; k ≥ 2.
	ModeTruss Mode = "truss"
)

// Query describes one attributed community query.
type Query struct {
	// Vertex is the query vertex's label; when empty, VertexID is used.
	Vertex string
	// VertexID is the query vertex's dense ID (used when Vertex == "").
	VertexID int32
	// K is the minimum degree bound (structure cohesiveness); must be ≥ 1.
	K int
	// Keywords is the input keyword set S. nil or empty means S = W(q),
	// the paper's default. For ModeCore, keywords q does not carry are
	// ignored; for ModeFixed/ModeThreshold they are honoured as given.
	Keywords []string
	// Mode selects the community model; empty means ModeCore.
	Mode Mode
	// Theta is ModeThreshold's sharing fraction θ ∈ (0, 1]: each member must
	// contain at least ⌈θ·|S|⌉ of the keywords. Ignored by other modes.
	Theta float64
	// Tau is ModeSimilar's Jaccard bound τ ∈ (0, 1]. Ignored by other modes.
	Tau float64
	// Algorithm picks the evaluation strategy; empty means AlgoDec.
	// Index-free algorithms (basic-g, basic-w) work without BuildIndex.
	Algorithm Algorithm
	// DisableInvertedLists turns off the CL-tree inverted lists during
	// keyword-checking (the paper's Inc-S*/Inc-T* ablation).
	DisableInvertedLists bool
	// FuzzDistance, when > 0, expands Keywords with every dictionary word
	// within that Levenshtein distance before the search — typo-tolerant
	// keyword queries ("reserch" still finds "research"). Ignored when
	// Keywords is empty. Clamped to 3.
	FuzzDistance int
	// MaxHops bounds the hop distance from the query vertex measured inside
	// the community — the (k,d)-truss constraint. Only honoured by
	// ModeTruss; 0 means unbounded.
	MaxHops int
	// Epsilon, in [0, 1), allows approximate evaluation: the returned
	// attribute score (AC-label size) is guaranteed ≥ (1−ε) times the
	// maximum achievable, and Result reports the achieved bounds. 0 (the
	// default) keeps evaluation exact. Epsilon steers the multi-candidate
	// modes (core, clique, truss), whose approximate evaluator follows the
	// decremental strategy regardless of Algorithm; the single-candidate
	// modes satisfy any ε trivially and evaluate exactly. Index-free
	// algorithms ignore ε the same way.
	Epsilon float64
	// Budget, when > 0, caps the work spent on the query, measured in
	// vertices/edges touched at the evaluators' cancellation checkpoints.
	// An exhausted budget ends the evaluation early: the result carries
	// whatever was proven by then (possibly no communities) with
	// BudgetExhausted set and sound score bounds. Every mode and algorithm
	// honours the budget. 0 means unbounded.
	Budget int64
	// TopR, when > 0, caps the candidate keyword sets verified per label
	// size in the multi-candidate modes, trading completeness of the
	// returned community set for latency. 0 verifies all candidates.
	TopR int
}

// Community is one attributed community.
type Community struct {
	// Label is the AC-label: the keywords shared by every member.
	Label []string
	// Members holds the member labels (or "#<id>" for unlabelled vertices).
	Members []string
	// MemberIDs holds the member vertex IDs, sorted.
	MemberIDs []int32
}

// Result is the outcome of a community search.
type Result struct {
	// Communities holds one community per maximal shared keyword set.
	Communities []Community
	// LabelSize is the number of shared keywords (0 for a fallback).
	LabelSize int
	// Fallback is true when no keywords could be shared and the plain
	// k-ĉore was returned instead.
	Fallback bool
	// ScoreLowerBound and ScoreUpperBound bracket the exact attribute score
	// (the maximal AC-label size): lower ≤ exact ≤ upper. An exact
	// evaluation reports both equal to LabelSize; an approximate one may
	// leave a gap of at most Epsilon·upper.
	ScoreLowerBound int
	ScoreUpperBound int
	// Exact reports that the result is identical to what exact evaluation
	// would return: the bounds met and no candidate was skipped. Always
	// true when Epsilon, Budget and TopR are all zero; possibly true even
	// with ε > 0 when the search happened to complete exactly.
	Exact bool
	// Work counts the work units actually spent, at checkpoint granularity.
	// Only metered when Epsilon, Budget or TopR is set; 0 otherwise.
	Work int64
	// BudgetExhausted reports that Query.Budget ran out mid-evaluation and
	// the result is whatever had been established by then.
	BudgetExhausted bool
}

// Searcher is the query surface shared by Graph (direct reads against the
// live master copy) and Snapshot (lock-free reads against an immutable
// published copy). Code that only evaluates queries should accept a Searcher
// so it serves both paths.
type Searcher interface {
	// Search evaluates one query under ctx; see Graph.Search.
	Search(ctx context.Context, q Query) (Result, error)
	// SearchBatch evaluates many queries concurrently and returns results in
	// input order; see Graph.SearchBatch.
	SearchBatch(ctx context.Context, queries []Query, opts BatchOptions) []BatchResult
}

var (
	_ Searcher = (*Graph)(nil)
	_ Searcher = (*Snapshot)(nil)
)

// view is the read-only pairing of a graph view with its (possibly nil)
// CL-tree that every search algorithm runs against. Both Graph (the live,
// mutable master copy) and Snapshot (an immutable frozen CSR copy) evaluate
// queries through a view, so the two paths cannot drift apart.
type view struct {
	g    graph.View
	tree *core.Tree
}

// view captures the master graph and index. The returned view aliases live
// state: it is only safe to query while no mutator runs concurrently. Use
// Snapshot for lock-free reads under concurrent updates.
//
// While a mapped boot's master is still deferred (OpenDurable clean
// recovery), the published zero-copy snapshot stands in — it is exactly the
// current state until the first mutation, and the first mutation
// materialises the master.
func (G *Graph) view() view {
	if G.masterReady.Load() {
		return view{g: G.g, tree: G.tree}
	}
	if s := G.snap.Load(); s != nil {
		return s.v
	}
	G.ensureMaster()
	return view{g: G.g, tree: G.tree}
}

// Search evaluates one attributed community query. It is the single
// evaluation entrypoint: Query.Mode selects the community model (Problem 1
// by default, plus the fixed/threshold/clique/similar/truss variants).
//
// ctx bounds the evaluation. The query algorithms poll cancellation at
// amortised checkpoints inside their peeling and traversal loops, so a
// deadline or cancel stops work mid-evaluation; the returned error then
// wraps ErrCanceled and context.Cause(ctx) (context.DeadlineExceeded for a
// deadline). A nil ctx is treated as context.Background().
//
// Search reads the live graph without synchronisation; it is safe for any
// number of concurrent callers, but not concurrently with mutators. For
// serving reads during updates, use Snapshot().Search.
func (G *Graph) Search(ctx context.Context, q Query) (Result, error) {
	return G.view().evaluate(ctx, q)
}

// knownMode reports whether m names a defined query mode ("" = ModeCore).
func knownMode(m Mode) bool {
	switch m {
	case "", ModeCore, ModeFixed, ModeThreshold, ModeClique, ModeSimilar, ModeTruss:
		return true
	}
	return false
}

// knownAlgorithm reports whether a names a defined evaluation strategy
// ("" = AlgoDec).
func knownAlgorithm(a Algorithm) bool {
	switch a {
	case "", AlgoDec, AlgoIncS, AlgoIncT, AlgoBasicG, AlgoBasicW:
		return true
	}
	return false
}

// validateDispatch rejects unknown Mode and Algorithm values and
// out-of-range approximation knobs. It runs before any evaluation — and, on
// the Snapshot path, before the cache probe, so a typo'd mode can never
// alias a cached result of a different model.
func validateDispatch(q Query) error {
	if !knownMode(q.Mode) {
		return fmt.Errorf("%w: %q", ErrBadMode, q.Mode)
	}
	if !knownAlgorithm(q.Algorithm) {
		return fmt.Errorf("%w: %q", ErrBadAlgorithm, q.Algorithm)
	}
	if q.Epsilon < 0 || q.Epsilon >= 1 || math.IsNaN(q.Epsilon) {
		return fmt.Errorf("%w: %v", ErrBadEpsilon, q.Epsilon)
	}
	if q.Budget < 0 {
		return fmt.Errorf("%w: budget %d", ErrBadBudget, q.Budget)
	}
	if q.TopR < 0 {
		return fmt.Errorf("%w: top_r %d", ErrBadTopR, q.TopR)
	}
	return nil
}

// approxActive reports whether any approximation knob is set. When none is,
// evaluation takes the exact code path untouched — the ε=0 contract.
func (q Query) approxActive() bool {
	return q.Epsilon > 0 || q.Budget > 0 || q.TopR > 0
}

// evaluate dispatches a query to its mode's algorithm. It is the one funnel
// under Graph.Search, Snapshot.Search and both batch paths.
func (v view) evaluate(ctx context.Context, q Query) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := validateDispatch(q); err != nil {
		return Result{}, err
	}
	if q.approxActive() {
		return v.evaluateApprox(ctx, q)
	}
	res, err := v.dispatch(ctx, q)
	if err != nil {
		return Result{}, err
	}
	res.ScoreLowerBound, res.ScoreUpperBound = res.LabelSize, res.LabelSize
	res.Exact = true
	return res, nil
}

// dispatch routes a query to its mode's exact evaluator.
func (v view) dispatch(ctx context.Context, q Query) (Result, error) {
	switch q.Mode {
	case "", ModeCore:
		return v.search(ctx, q)
	case ModeFixed:
		return v.searchFixed(ctx, q)
	case ModeThreshold:
		return v.searchThreshold(ctx, q, q.Theta)
	case ModeClique:
		return v.searchClique(ctx, q)
	case ModeSimilar:
		return v.searchSimilar(ctx, q, q.Tau)
	default: // ModeTruss; validateDispatch rejected everything else
		return v.searchTruss(ctx, q)
	}
}

// evaluateApprox is the approximate counterpart of dispatch: it attaches the
// query's work budget to the context as a cancel.Meter (so every evaluator
// inherits the cap through its existing checkpoints) and routes ε/top-r to
// the dedicated approximate drivers of the multi-candidate modes. Modes
// without a dedicated driver run their exact evaluator under the meter —
// which satisfies any ε trivially — and convert budget exhaustion into a
// partial result with sound bounds instead of an error.
func (v view) evaluateApprox(ctx context.Context, q Query) (Result, error) {
	meter := cancel.NewMeter(q.Budget)
	ctx = cancel.WithMeter(ctx, meter)
	ap := core.Approx{Epsilon: q.Epsilon, TopR: q.TopR}
	if q.Epsilon > 0 || q.TopR > 0 {
		switch q.Mode {
		case "", ModeCore:
			if q.Algorithm != AlgoBasicG && q.Algorithm != AlgoBasicW {
				return v.approxMulti(ctx, q, func(qv graph.VertexID, s []graph.KeywordID) (core.Result, core.Bounds, error) {
					opt := core.DefaultOptions()
					opt.UseInvertedLists = !q.DisableInvertedLists
					return core.DecApprox(ctx, v.tree, qv, q.K, s, opt, ap)
				})
			}
		case ModeClique:
			return v.approxMulti(ctx, q, func(qv graph.VertexID, s []graph.KeywordID) (core.Result, core.Bounds, error) {
				return core.CliqueApprox(ctx, v.tree, qv, q.K, s, ap)
			})
		case ModeTruss:
			return v.approxMulti(ctx, q, func(qv graph.VertexID, s []graph.KeywordID) (core.Result, core.Bounds, error) {
				return core.TrussApprox(ctx, v.tree, qv, q.K, q.MaxHops, s, ap)
			})
		}
	}
	res, err := v.dispatch(ctx, q)
	if err != nil {
		if errors.Is(err, cancel.ErrBudget) {
			return v.exhaustedResult(q, meter), nil
		}
		return Result{}, err
	}
	res.ScoreLowerBound, res.ScoreUpperBound = res.LabelSize, res.LabelSize
	res.Exact = true
	res.Work = meter.Spent()
	return res, nil
}

// approxMulti resolves the query and runs one of the approximate
// multi-candidate drivers, rendering its result and achieved bounds.
func (v view) approxMulti(ctx context.Context, q Query, run func(qv graph.VertexID, s []graph.KeywordID) (core.Result, core.Bounds, error)) (Result, error) {
	qv, s, err := v.resolve(q)
	if err != nil {
		return Result{}, err
	}
	if v.tree == nil {
		return Result{}, ErrNoIndex
	}
	res, b, err := run(qv, s)
	if err != nil {
		return Result{}, err
	}
	out := v.render(res)
	out.ScoreLowerBound = b.Lower
	out.ScoreUpperBound = b.Upper
	out.Exact = b.Exact
	out.Work = b.Work
	out.BudgetExhausted = b.BudgetExhausted
	return out, nil
}

// exhaustedResult is the partial result of an exact evaluator cut short by
// its work budget: no communities were established, so the score bounds are
// the trivial sound bracket [0, max achievable for the mode].
func (v view) exhaustedResult(q Query, meter *cancel.Meter) Result {
	upper := 0
	if qv, s, err := v.resolve(q); err == nil {
		switch q.Mode {
		case ModeFixed, ModeThreshold:
			// The label is S as given when a community exists.
			upper = len(s)
		default:
			// The label can only contain keywords q itself carries.
			if s == nil {
				upper = len(v.g.Keywords(qv))
			} else {
				upper = v.g.CountSharedKeywords(qv, s)
			}
		}
	}
	return Result{
		ScoreUpperBound: upper,
		Work:            meter.Spent(),
		BudgetExhausted: true,
	}
}

func (v view) search(ctx context.Context, q Query) (Result, error) {
	qv, s, err := v.resolve(q)
	if err != nil {
		return Result{}, err
	}
	opt := core.DefaultOptions()
	opt.UseInvertedLists = !q.DisableInvertedLists

	var res core.Result
	switch q.Algorithm {
	case AlgoBasicG:
		res, err = core.BasicG(ctx, v.g, qv, q.K, s, opt)
	case AlgoBasicW:
		res, err = core.BasicW(ctx, v.g, qv, q.K, s, opt)
	default: // AlgoDec, AlgoIncS, AlgoIncT, "" — validateDispatch rejected the rest
		if v.tree == nil {
			return Result{}, ErrNoIndex
		}
		switch q.Algorithm {
		case AlgoIncS:
			res, err = core.IncS(ctx, v.tree, qv, q.K, s, opt)
		case AlgoIncT:
			res, err = core.IncT(ctx, v.tree, qv, q.K, s, opt)
		default:
			res, err = core.Dec(ctx, v.tree, qv, q.K, s, opt)
		}
	}
	if err != nil {
		return Result{}, err
	}
	return v.render(res), nil
}

func (v view) searchFixed(ctx context.Context, q Query) (Result, error) {
	qv, s, err := v.resolve(q)
	if err != nil {
		return Result{}, err
	}
	var res core.Result
	switch q.Algorithm {
	case AlgoBasicG:
		res, err = core.BasicGV1(ctx, v.g, qv, q.K, s)
	case AlgoBasicW:
		res, err = core.BasicWV1(ctx, v.g, qv, q.K, s)
	default:
		if v.tree == nil {
			return Result{}, ErrNoIndex
		}
		res, err = core.SW(ctx, v.tree, qv, q.K, s)
	}
	if err != nil {
		return Result{}, err
	}
	return v.render(res), nil
}

func (v view) searchThreshold(ctx context.Context, q Query, theta float64) (Result, error) {
	qv, s, err := v.resolve(q)
	if err != nil {
		return Result{}, err
	}
	var res core.Result
	switch q.Algorithm {
	case AlgoBasicG:
		res, err = core.BasicGV2(ctx, v.g, qv, q.K, s, theta)
	case AlgoBasicW:
		res, err = core.BasicWV2(ctx, v.g, qv, q.K, s, theta)
	default:
		if v.tree == nil {
			return Result{}, ErrNoIndex
		}
		res, err = core.SWT(ctx, v.tree, qv, q.K, s, theta)
	}
	if err != nil {
		return Result{}, err
	}
	return v.render(res), nil
}

func (v view) searchClique(ctx context.Context, q Query) (Result, error) {
	qv, s, err := v.resolve(q)
	if err != nil {
		return Result{}, err
	}
	if v.tree == nil {
		return Result{}, ErrNoIndex
	}
	res, err := core.CliqueSearch(ctx, v.tree, qv, q.K, s)
	if err != nil {
		return Result{}, err
	}
	return v.render(res), nil
}

func (v view) searchSimilar(ctx context.Context, q Query, tau float64) (Result, error) {
	qv, s, err := v.resolve(q)
	if err != nil {
		return Result{}, err
	}
	var res core.Result
	if q.Algorithm == AlgoBasicG {
		res, err = core.BasicGJ(ctx, v.g, qv, q.K, s, tau)
	} else {
		if v.tree == nil {
			return Result{}, ErrNoIndex
		}
		res, err = core.SJ(ctx, v.tree, qv, q.K, s, tau)
	}
	if err != nil {
		return Result{}, err
	}
	return v.render(res), nil
}

func (v view) searchTruss(ctx context.Context, q Query) (Result, error) {
	qv, s, err := v.resolve(q)
	if err != nil {
		return Result{}, err
	}
	if v.tree == nil {
		return Result{}, ErrNoIndex
	}
	res, err := core.TrussSearchD(ctx, v.tree, qv, q.K, q.MaxHops, s)
	if err != nil {
		return Result{}, err
	}
	return v.render(res), nil
}

// canceledErr wraps an already-canceled context into the public sentinel
// error without starting any evaluation.
func canceledErr(ctx context.Context) error { return cancel.Wrap(ctx) }

// resolve maps the public query to internal identifiers. Keywords unknown to
// the dictionary cannot appear in any community and are dropped.
func (v view) resolve(q Query) (graph.VertexID, []graph.KeywordID, error) {
	var qv graph.VertexID
	if q.Vertex != "" {
		vid, ok := v.g.VertexByLabel(q.Vertex)
		if !ok {
			return 0, nil, fmt.Errorf("%w: label %q", ErrVertexNotFound, q.Vertex)
		}
		qv = vid
	} else {
		if int(q.VertexID) < 0 || int(q.VertexID) >= v.g.NumVertices() {
			return 0, nil, fmt.Errorf("%w: id %d", ErrVertexNotFound, q.VertexID)
		}
		qv = graph.VertexID(q.VertexID)
	}
	var s []graph.KeywordID
	if len(q.Keywords) > 0 {
		if q.FuzzDistance > 0 {
			s = core.ExpandByEditDistance(v.g.Dict(), q.Keywords, q.FuzzDistance)
		} else {
			s, _ = v.g.Dict().LookupAll(q.Keywords)
		}
		if len(s) == 0 {
			// All requested keywords are unknown: keep a non-nil empty set so
			// the query semantics stay "no shared keywords possible" rather
			// than defaulting to W(q).
			s = []graph.KeywordID{}
		}
	}
	return qv, s, nil
}

func (v view) render(res core.Result) Result {
	out := Result{LabelSize: res.LabelSize, Fallback: res.Fallback}
	for _, c := range res.Communities {
		comm := Community{
			Label:     make([]string, 0, len(c.Label)),
			Members:   make([]string, 0, len(c.Vertices)),
			MemberIDs: make([]int32, 0, len(c.Vertices)),
		}
		for _, w := range c.Label {
			comm.Label = append(comm.Label, v.g.Dict().Word(w))
		}
		for _, vid := range c.Vertices {
			name := v.g.Label(vid)
			if name == "" {
				name = fmt.Sprintf("#%d", vid)
			}
			comm.Members = append(comm.Members, name)
			comm.MemberIDs = append(comm.MemberIDs, int32(vid))
		}
		out.Communities = append(out.Communities, comm)
	}
	return out
}

// stats computes summary statistics for the view's graph and index.
func (v view) stats() Stats {
	s := Stats{
		Vertices:    v.g.NumVertices(),
		Edges:       v.g.NumEdges(),
		AvgDegree:   v.g.AvgDegree(),
		AvgKeywords: v.g.AvgKeywords(),
		Keywords:    v.g.Dict().Size(),
	}
	if v.tree != nil {
		s.KMax = int(v.tree.KMax)
		s.IndexNodes = v.tree.NumNodes()
		s.IndexHeight = v.tree.Height()
	} else {
		s.KMax = int(kcore.MaxCore(kcore.Decompose(v.g)))
	}
	return s
}

// coreNumber returns the core number of a vertex (requires an index).
func (v view) coreNumber(vid int32) (int, error) {
	if v.tree == nil {
		return 0, ErrNoIndex
	}
	if int(vid) < 0 || int(vid) >= v.g.NumVertices() {
		return 0, fmt.Errorf("%w: id %d", ErrVertexNotFound, vid)
	}
	return int(v.tree.Core[vid]), nil
}
