package acq

import (
	"context"
	"fmt"

	"github.com/acq-search/acq/internal/cancel"
	"github.com/acq-search/acq/internal/core"
	"github.com/acq-search/acq/internal/graph"
	"github.com/acq-search/acq/internal/kcore"
)

// Algorithm selects an ACQ evaluation strategy.
type Algorithm string

const (
	// AlgoDec is the decremental algorithm — the paper's fastest; default.
	AlgoDec Algorithm = "dec"
	// AlgoIncS is the space-efficient incremental algorithm.
	AlgoIncS Algorithm = "inc-s"
	// AlgoIncT is the time-efficient incremental algorithm.
	AlgoIncT Algorithm = "inc-t"
	// AlgoBasicG is the index-free baseline that filters inside the k-ĉore.
	AlgoBasicG Algorithm = "basic-g"
	// AlgoBasicW is the index-free baseline that filters the whole graph.
	AlgoBasicW Algorithm = "basic-w"
)

// Mode selects the community model a Query evaluates. The zero value (or
// ModeCore) is the paper's Problem 1; the other modes fold the former
// SearchFixed/SearchThreshold/SearchClique/SearchSimilar/SearchTruss
// entrypoints into the one Search surface.
type Mode string

const (
	// ModeCore (also the zero value "") answers the paper's Problem 1:
	// minimum-degree-k communities sharing a maximal subset of S.
	ModeCore Mode = "core"
	// ModeFixed is Variant 1 (Appendix G): every member must contain the
	// whole keyword set S. Empty Communities (nil error) means none exists.
	ModeFixed Mode = "fixed"
	// ModeThreshold is Variant 2 (Appendix G): every member must contain at
	// least ⌈Theta·|S|⌉ of the keywords, Query.Theta ∈ (0, 1].
	ModeThreshold Mode = "threshold"
	// ModeClique uses k-clique percolation structure cohesiveness:
	// communities are unions of overlapping cliques of size ≥ k reachable
	// from q sharing a maximal keyword subset. Requires an index; k ≥ 2.
	ModeClique Mode = "clique"
	// ModeSimilar requires every member's keyword set to have Jaccard
	// similarity ≥ Query.Tau to S (default W(q)), Tau ∈ (0, 1]. Requires an
	// index unless Algorithm is AlgoBasicG.
	ModeSimilar Mode = "similar"
	// ModeTruss uses k-truss structure cohesiveness: every community edge
	// must close ≥ k−2 triangles inside the community. Query.MaxHops > 0
	// additionally bounds the in-community hop distance from q (the
	// (k,d)-truss). Requires an index; k ≥ 2.
	ModeTruss Mode = "truss"
)

// Query describes one attributed community query.
type Query struct {
	// Vertex is the query vertex's label; when empty, VertexID is used.
	Vertex string
	// VertexID is the query vertex's dense ID (used when Vertex == "").
	VertexID int32
	// K is the minimum degree bound (structure cohesiveness); must be ≥ 1.
	K int
	// Keywords is the input keyword set S. nil or empty means S = W(q),
	// the paper's default. For ModeCore, keywords q does not carry are
	// ignored; for ModeFixed/ModeThreshold they are honoured as given.
	Keywords []string
	// Mode selects the community model; empty means ModeCore.
	Mode Mode
	// Theta is ModeThreshold's sharing fraction θ ∈ (0, 1]: each member must
	// contain at least ⌈θ·|S|⌉ of the keywords. Ignored by other modes.
	Theta float64
	// Tau is ModeSimilar's Jaccard bound τ ∈ (0, 1]. Ignored by other modes.
	Tau float64
	// Algorithm picks the evaluation strategy; empty means AlgoDec.
	// Index-free algorithms (basic-g, basic-w) work without BuildIndex.
	Algorithm Algorithm
	// DisableInvertedLists turns off the CL-tree inverted lists during
	// keyword-checking (the paper's Inc-S*/Inc-T* ablation).
	DisableInvertedLists bool
	// FuzzDistance, when > 0, expands Keywords with every dictionary word
	// within that Levenshtein distance before the search — typo-tolerant
	// keyword queries ("reserch" still finds "research"). Ignored when
	// Keywords is empty. Clamped to 3.
	FuzzDistance int
	// MaxHops bounds the hop distance from the query vertex measured inside
	// the community — the (k,d)-truss constraint. Only honoured by
	// ModeTruss; 0 means unbounded.
	MaxHops int
}

// Community is one attributed community.
type Community struct {
	// Label is the AC-label: the keywords shared by every member.
	Label []string
	// Members holds the member labels (or "#<id>" for unlabelled vertices).
	Members []string
	// MemberIDs holds the member vertex IDs, sorted.
	MemberIDs []int32
}

// Result is the outcome of a community search.
type Result struct {
	// Communities holds one community per maximal shared keyword set.
	Communities []Community
	// LabelSize is the number of shared keywords (0 for a fallback).
	LabelSize int
	// Fallback is true when no keywords could be shared and the plain
	// k-ĉore was returned instead.
	Fallback bool
}

// Searcher is the query surface shared by Graph (direct reads against the
// live master copy) and Snapshot (lock-free reads against an immutable
// published copy). Code that only evaluates queries should accept a Searcher
// so it serves both paths.
type Searcher interface {
	// Search evaluates one query under ctx; see Graph.Search.
	Search(ctx context.Context, q Query) (Result, error)
	// SearchBatch evaluates many queries concurrently and returns results in
	// input order; see Graph.SearchBatch.
	SearchBatch(ctx context.Context, queries []Query, opts BatchOptions) []BatchResult
}

var (
	_ Searcher = (*Graph)(nil)
	_ Searcher = (*Snapshot)(nil)
)

// view is the read-only pairing of a graph view with its (possibly nil)
// CL-tree that every search algorithm runs against. Both Graph (the live,
// mutable master copy) and Snapshot (an immutable frozen CSR copy) evaluate
// queries through a view, so the two paths cannot drift apart.
type view struct {
	g    graph.View
	tree *core.Tree
}

// view captures the master graph and index. The returned view aliases live
// state: it is only safe to query while no mutator runs concurrently. Use
// Snapshot for lock-free reads under concurrent updates.
//
// While a mapped boot's master is still deferred (OpenDurable clean
// recovery), the published zero-copy snapshot stands in — it is exactly the
// current state until the first mutation, and the first mutation
// materialises the master.
func (G *Graph) view() view {
	if G.masterReady.Load() {
		return view{g: G.g, tree: G.tree}
	}
	if s := G.snap.Load(); s != nil {
		return s.v
	}
	G.ensureMaster()
	return view{g: G.g, tree: G.tree}
}

// Search evaluates one attributed community query. It is the single
// evaluation entrypoint: Query.Mode selects the community model (Problem 1
// by default, plus the fixed/threshold/clique/similar/truss variants).
//
// ctx bounds the evaluation. The query algorithms poll cancellation at
// amortised checkpoints inside their peeling and traversal loops, so a
// deadline or cancel stops work mid-evaluation; the returned error then
// wraps ErrCanceled and context.Cause(ctx) (context.DeadlineExceeded for a
// deadline). A nil ctx is treated as context.Background().
//
// Search reads the live graph without synchronisation; it is safe for any
// number of concurrent callers, but not concurrently with mutators. For
// serving reads during updates, use Snapshot().Search.
func (G *Graph) Search(ctx context.Context, q Query) (Result, error) {
	return G.view().evaluate(ctx, q)
}

// knownMode reports whether m names a defined query mode ("" = ModeCore).
func knownMode(m Mode) bool {
	switch m {
	case "", ModeCore, ModeFixed, ModeThreshold, ModeClique, ModeSimilar, ModeTruss:
		return true
	}
	return false
}

// knownAlgorithm reports whether a names a defined evaluation strategy
// ("" = AlgoDec).
func knownAlgorithm(a Algorithm) bool {
	switch a {
	case "", AlgoDec, AlgoIncS, AlgoIncT, AlgoBasicG, AlgoBasicW:
		return true
	}
	return false
}

// validateDispatch rejects unknown Mode and Algorithm values. It runs before
// any evaluation — and, on the Snapshot path, before the cache probe, so a
// typo'd mode can never alias a cached result of a different model.
func validateDispatch(q Query) error {
	if !knownMode(q.Mode) {
		return fmt.Errorf("%w: %q", ErrBadMode, q.Mode)
	}
	if !knownAlgorithm(q.Algorithm) {
		return fmt.Errorf("%w: %q", ErrBadAlgorithm, q.Algorithm)
	}
	return nil
}

// evaluate dispatches a query to its mode's algorithm. It is the one funnel
// under Graph.Search, Snapshot.Search and both batch paths.
func (v view) evaluate(ctx context.Context, q Query) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := validateDispatch(q); err != nil {
		return Result{}, err
	}
	switch q.Mode {
	case "", ModeCore:
		return v.search(ctx, q)
	case ModeFixed:
		return v.searchFixed(ctx, q)
	case ModeThreshold:
		return v.searchThreshold(ctx, q, q.Theta)
	case ModeClique:
		return v.searchClique(ctx, q)
	case ModeSimilar:
		return v.searchSimilar(ctx, q, q.Tau)
	default: // ModeTruss; validateDispatch rejected everything else
		return v.searchTruss(ctx, q)
	}
}

func (v view) search(ctx context.Context, q Query) (Result, error) {
	qv, s, err := v.resolve(q)
	if err != nil {
		return Result{}, err
	}
	opt := core.DefaultOptions()
	opt.UseInvertedLists = !q.DisableInvertedLists

	var res core.Result
	switch q.Algorithm {
	case AlgoBasicG:
		res, err = core.BasicG(ctx, v.g, qv, q.K, s, opt)
	case AlgoBasicW:
		res, err = core.BasicW(ctx, v.g, qv, q.K, s, opt)
	default: // AlgoDec, AlgoIncS, AlgoIncT, "" — validateDispatch rejected the rest
		if v.tree == nil {
			return Result{}, ErrNoIndex
		}
		switch q.Algorithm {
		case AlgoIncS:
			res, err = core.IncS(ctx, v.tree, qv, q.K, s, opt)
		case AlgoIncT:
			res, err = core.IncT(ctx, v.tree, qv, q.K, s, opt)
		default:
			res, err = core.Dec(ctx, v.tree, qv, q.K, s, opt)
		}
	}
	if err != nil {
		return Result{}, err
	}
	return v.render(res), nil
}

func (v view) searchFixed(ctx context.Context, q Query) (Result, error) {
	qv, s, err := v.resolve(q)
	if err != nil {
		return Result{}, err
	}
	var res core.Result
	switch q.Algorithm {
	case AlgoBasicG:
		res, err = core.BasicGV1(ctx, v.g, qv, q.K, s)
	case AlgoBasicW:
		res, err = core.BasicWV1(ctx, v.g, qv, q.K, s)
	default:
		if v.tree == nil {
			return Result{}, ErrNoIndex
		}
		res, err = core.SW(ctx, v.tree, qv, q.K, s)
	}
	if err != nil {
		return Result{}, err
	}
	return v.render(res), nil
}

func (v view) searchThreshold(ctx context.Context, q Query, theta float64) (Result, error) {
	qv, s, err := v.resolve(q)
	if err != nil {
		return Result{}, err
	}
	var res core.Result
	switch q.Algorithm {
	case AlgoBasicG:
		res, err = core.BasicGV2(ctx, v.g, qv, q.K, s, theta)
	case AlgoBasicW:
		res, err = core.BasicWV2(ctx, v.g, qv, q.K, s, theta)
	default:
		if v.tree == nil {
			return Result{}, ErrNoIndex
		}
		res, err = core.SWT(ctx, v.tree, qv, q.K, s, theta)
	}
	if err != nil {
		return Result{}, err
	}
	return v.render(res), nil
}

func (v view) searchClique(ctx context.Context, q Query) (Result, error) {
	qv, s, err := v.resolve(q)
	if err != nil {
		return Result{}, err
	}
	if v.tree == nil {
		return Result{}, ErrNoIndex
	}
	res, err := core.CliqueSearch(ctx, v.tree, qv, q.K, s)
	if err != nil {
		return Result{}, err
	}
	return v.render(res), nil
}

func (v view) searchSimilar(ctx context.Context, q Query, tau float64) (Result, error) {
	qv, s, err := v.resolve(q)
	if err != nil {
		return Result{}, err
	}
	var res core.Result
	if q.Algorithm == AlgoBasicG {
		res, err = core.BasicGJ(ctx, v.g, qv, q.K, s, tau)
	} else {
		if v.tree == nil {
			return Result{}, ErrNoIndex
		}
		res, err = core.SJ(ctx, v.tree, qv, q.K, s, tau)
	}
	if err != nil {
		return Result{}, err
	}
	return v.render(res), nil
}

func (v view) searchTruss(ctx context.Context, q Query) (Result, error) {
	qv, s, err := v.resolve(q)
	if err != nil {
		return Result{}, err
	}
	if v.tree == nil {
		return Result{}, ErrNoIndex
	}
	res, err := core.TrussSearchD(ctx, v.tree, qv, q.K, q.MaxHops, s)
	if err != nil {
		return Result{}, err
	}
	return v.render(res), nil
}

// canceledErr wraps an already-canceled context into the public sentinel
// error without starting any evaluation.
func canceledErr(ctx context.Context) error { return cancel.Wrap(ctx) }

// resolve maps the public query to internal identifiers. Keywords unknown to
// the dictionary cannot appear in any community and are dropped.
func (v view) resolve(q Query) (graph.VertexID, []graph.KeywordID, error) {
	var qv graph.VertexID
	if q.Vertex != "" {
		vid, ok := v.g.VertexByLabel(q.Vertex)
		if !ok {
			return 0, nil, fmt.Errorf("%w: label %q", ErrVertexNotFound, q.Vertex)
		}
		qv = vid
	} else {
		if int(q.VertexID) < 0 || int(q.VertexID) >= v.g.NumVertices() {
			return 0, nil, fmt.Errorf("%w: id %d", ErrVertexNotFound, q.VertexID)
		}
		qv = graph.VertexID(q.VertexID)
	}
	var s []graph.KeywordID
	if len(q.Keywords) > 0 {
		if q.FuzzDistance > 0 {
			s = core.ExpandByEditDistance(v.g.Dict(), q.Keywords, q.FuzzDistance)
		} else {
			s, _ = v.g.Dict().LookupAll(q.Keywords)
		}
		if len(s) == 0 {
			// All requested keywords are unknown: keep a non-nil empty set so
			// the query semantics stay "no shared keywords possible" rather
			// than defaulting to W(q).
			s = []graph.KeywordID{}
		}
	}
	return qv, s, nil
}

func (v view) render(res core.Result) Result {
	out := Result{LabelSize: res.LabelSize, Fallback: res.Fallback}
	for _, c := range res.Communities {
		comm := Community{
			Label:     make([]string, 0, len(c.Label)),
			Members:   make([]string, 0, len(c.Vertices)),
			MemberIDs: make([]int32, 0, len(c.Vertices)),
		}
		for _, w := range c.Label {
			comm.Label = append(comm.Label, v.g.Dict().Word(w))
		}
		for _, vid := range c.Vertices {
			name := v.g.Label(vid)
			if name == "" {
				name = fmt.Sprintf("#%d", vid)
			}
			comm.Members = append(comm.Members, name)
			comm.MemberIDs = append(comm.MemberIDs, int32(vid))
		}
		out.Communities = append(out.Communities, comm)
	}
	return out
}

// stats computes summary statistics for the view's graph and index.
func (v view) stats() Stats {
	s := Stats{
		Vertices:    v.g.NumVertices(),
		Edges:       v.g.NumEdges(),
		AvgDegree:   v.g.AvgDegree(),
		AvgKeywords: v.g.AvgKeywords(),
		Keywords:    v.g.Dict().Size(),
	}
	if v.tree != nil {
		s.KMax = int(v.tree.KMax)
		s.IndexNodes = v.tree.NumNodes()
		s.IndexHeight = v.tree.Height()
	} else {
		s.KMax = int(kcore.MaxCore(kcore.Decompose(v.g)))
	}
	return s
}

// coreNumber returns the core number of a vertex (requires an index).
func (v view) coreNumber(vid int32) (int, error) {
	if v.tree == nil {
		return 0, ErrNoIndex
	}
	if int(vid) < 0 || int(vid) >= v.g.NumVertices() {
		return 0, fmt.Errorf("%w: id %d", ErrVertexNotFound, vid)
	}
	return int(v.tree.Core[vid]), nil
}
