package acq

import (
	"fmt"

	"github.com/acq-search/acq/internal/core"
	"github.com/acq-search/acq/internal/graph"
)

// Algorithm selects an ACQ evaluation strategy.
type Algorithm string

const (
	// AlgoDec is the decremental algorithm — the paper's fastest; default.
	AlgoDec Algorithm = "dec"
	// AlgoIncS is the space-efficient incremental algorithm.
	AlgoIncS Algorithm = "inc-s"
	// AlgoIncT is the time-efficient incremental algorithm.
	AlgoIncT Algorithm = "inc-t"
	// AlgoBasicG is the index-free baseline that filters inside the k-ĉore.
	AlgoBasicG Algorithm = "basic-g"
	// AlgoBasicW is the index-free baseline that filters the whole graph.
	AlgoBasicW Algorithm = "basic-w"
)

// Query describes one attributed community query.
type Query struct {
	// Vertex is the query vertex's label; when empty, VertexID is used.
	Vertex string
	// VertexID is the query vertex's dense ID (used when Vertex == "").
	VertexID int32
	// K is the minimum degree bound (structure cohesiveness); must be ≥ 1.
	K int
	// Keywords is the input keyword set S. nil or empty means S = W(q),
	// the paper's default. For Search, keywords q does not carry are
	// ignored; for SearchFixed/SearchThreshold they are honoured as given.
	Keywords []string
	// Algorithm picks the evaluation strategy; empty means AlgoDec.
	// Index-free algorithms (basic-g, basic-w) work without BuildIndex.
	Algorithm Algorithm
	// DisableInvertedLists turns off the CL-tree inverted lists during
	// keyword-checking (the paper's Inc-S*/Inc-T* ablation).
	DisableInvertedLists bool
	// FuzzDistance, when > 0, expands Keywords with every dictionary word
	// within that Levenshtein distance before the search — typo-tolerant
	// keyword queries ("reserch" still finds "research"). Ignored when
	// Keywords is empty. Clamped to 3.
	FuzzDistance int
	// MaxHops bounds the hop distance from the query vertex measured inside
	// the community — the (k,d)-truss constraint. Only honoured by
	// SearchTruss; 0 means unbounded.
	MaxHops int
}

// Community is one attributed community.
type Community struct {
	// Label is the AC-label: the keywords shared by every member.
	Label []string
	// Members holds the member labels (or "#<id>" for unlabelled vertices).
	Members []string
	// MemberIDs holds the member vertex IDs, sorted.
	MemberIDs []int32
}

// Result is the outcome of a community search.
type Result struct {
	// Communities holds one community per maximal shared keyword set.
	Communities []Community
	// LabelSize is the number of shared keywords (0 for a fallback).
	LabelSize int
	// Fallback is true when no keywords could be shared and the plain
	// k-ĉore was returned instead.
	Fallback bool
}

// Search answers an ACQ (the paper's Problem 1): among the connected
// subgraphs containing q with minimum internal degree ≥ k, return those
// sharing the largest subset of S.
func (G *Graph) Search(q Query) (Result, error) {
	qv, s, err := G.resolve(q)
	if err != nil {
		return Result{}, err
	}
	opt := core.DefaultOptions()
	opt.UseInvertedLists = !q.DisableInvertedLists

	var res core.Result
	switch q.Algorithm {
	case AlgoBasicG:
		res, err = core.BasicG(G.g, qv, q.K, s, opt)
	case AlgoBasicW:
		res, err = core.BasicW(G.g, qv, q.K, s, opt)
	case AlgoIncS, AlgoIncT, AlgoDec, "":
		if G.tree == nil {
			return Result{}, ErrNoIndex
		}
		switch q.Algorithm {
		case AlgoIncS:
			res, err = core.IncS(G.tree, qv, q.K, s, opt)
		case AlgoIncT:
			res, err = core.IncT(G.tree, qv, q.K, s, opt)
		default:
			res, err = core.Dec(G.tree, qv, q.K, s, opt)
		}
	default:
		return Result{}, fmt.Errorf("acq: unknown algorithm %q", q.Algorithm)
	}
	if err != nil {
		return Result{}, err
	}
	return G.render(res), nil
}

// SearchFixed answers Variant 1 (Appendix G): every member must contain the
// whole keyword set. An empty Communities list (with nil error) means no
// such community exists.
func (G *Graph) SearchFixed(q Query) (Result, error) {
	qv, s, err := G.resolve(q)
	if err != nil {
		return Result{}, err
	}
	var res core.Result
	switch q.Algorithm {
	case AlgoBasicG:
		res, err = core.BasicGV1(G.g, qv, q.K, s)
	case AlgoBasicW:
		res, err = core.BasicWV1(G.g, qv, q.K, s)
	default:
		if G.tree == nil {
			return Result{}, ErrNoIndex
		}
		res, err = core.SW(G.tree, qv, q.K, s)
	}
	if err != nil {
		return Result{}, err
	}
	return G.render(res), nil
}

// SearchThreshold answers Variant 2 (Appendix G): every member must contain
// at least ⌈θ·|S|⌉ of the keywords, θ ∈ (0, 1].
func (G *Graph) SearchThreshold(q Query, theta float64) (Result, error) {
	qv, s, err := G.resolve(q)
	if err != nil {
		return Result{}, err
	}
	var res core.Result
	switch q.Algorithm {
	case AlgoBasicG:
		res, err = core.BasicGV2(G.g, qv, q.K, s, theta)
	case AlgoBasicW:
		res, err = core.BasicWV2(G.g, qv, q.K, s, theta)
	default:
		if G.tree == nil {
			return Result{}, ErrNoIndex
		}
		res, err = core.SWT(G.tree, qv, q.K, s, theta)
	}
	if err != nil {
		return Result{}, err
	}
	return G.render(res), nil
}

// SearchClique answers the ACQ under k-clique percolation cohesiveness
// (conclusion extension): communities are unions of overlapping cliques of
// size ≥ k reachable from q sharing a maximal keyword subset. Requires an
// index; k ≥ 2.
func (G *Graph) SearchClique(q Query) (Result, error) {
	qv, s, err := G.resolve(q)
	if err != nil {
		return Result{}, err
	}
	if G.tree == nil {
		return Result{}, ErrNoIndex
	}
	res, err := core.CliqueSearch(G.tree, qv, q.K, s)
	if err != nil {
		return Result{}, err
	}
	return G.render(res), nil
}

// SearchSimilar returns the connected community of q (minimum degree ≥ k)
// whose members' keyword sets all have Jaccard similarity ≥ tau to S
// (default W(q)) — the Jaccard keyword cohesiveness the paper's conclusion
// proposes. Requires an index unless Algorithm is AlgoBasicG.
func (G *Graph) SearchSimilar(q Query, tau float64) (Result, error) {
	qv, s, err := G.resolve(q)
	if err != nil {
		return Result{}, err
	}
	var res core.Result
	if q.Algorithm == AlgoBasicG {
		res, err = core.BasicGJ(G.g, qv, q.K, s, tau)
	} else {
		if G.tree == nil {
			return Result{}, ErrNoIndex
		}
		res, err = core.SJ(G.tree, qv, q.K, s, tau)
	}
	if err != nil {
		return Result{}, err
	}
	return G.render(res), nil
}

// SearchTruss answers the ACQ under k-truss structure cohesiveness (the
// extension the paper's conclusion calls for): every community edge must
// close at least k−2 triangles inside the community, a strictly stronger
// requirement than minimum degree. Requires an index; k ≥ 2.
func (G *Graph) SearchTruss(q Query) (Result, error) {
	qv, s, err := G.resolve(q)
	if err != nil {
		return Result{}, err
	}
	if G.tree == nil {
		return Result{}, ErrNoIndex
	}
	res, err := core.TrussSearchD(G.tree, qv, q.K, q.MaxHops, s)
	if err != nil {
		return Result{}, err
	}
	return G.render(res), nil
}

// resolve maps the public query to internal identifiers. Keywords unknown to
// the dictionary cannot appear in any community and are dropped.
func (G *Graph) resolve(q Query) (graph.VertexID, []graph.KeywordID, error) {
	var qv graph.VertexID
	if q.Vertex != "" {
		v, ok := G.g.VertexByLabel(q.Vertex)
		if !ok {
			return 0, nil, fmt.Errorf("%w: label %q", ErrVertexNotFound, q.Vertex)
		}
		qv = v
	} else {
		if int(q.VertexID) < 0 || int(q.VertexID) >= G.g.NumVertices() {
			return 0, nil, fmt.Errorf("%w: id %d", ErrVertexNotFound, q.VertexID)
		}
		qv = graph.VertexID(q.VertexID)
	}
	var s []graph.KeywordID
	if len(q.Keywords) > 0 {
		if q.FuzzDistance > 0 {
			s = core.ExpandByEditDistance(G.g.Dict(), q.Keywords, q.FuzzDistance)
		} else {
			s, _ = G.g.Dict().LookupAll(q.Keywords)
		}
		if len(s) == 0 {
			// All requested keywords are unknown: keep a non-nil empty set so
			// the query semantics stay "no shared keywords possible" rather
			// than defaulting to W(q).
			s = []graph.KeywordID{}
		}
	}
	return qv, s, nil
}

func (G *Graph) render(res core.Result) Result {
	out := Result{LabelSize: res.LabelSize, Fallback: res.Fallback}
	for _, c := range res.Communities {
		comm := Community{
			Label:     make([]string, 0, len(c.Label)),
			Members:   make([]string, 0, len(c.Vertices)),
			MemberIDs: make([]int32, 0, len(c.Vertices)),
		}
		for _, w := range c.Label {
			comm.Label = append(comm.Label, G.g.Dict().Word(w))
		}
		for _, v := range c.Vertices {
			name := G.g.Label(v)
			if name == "" {
				name = fmt.Sprintf("#%d", v)
			}
			comm.Members = append(comm.Members, name)
			comm.MemberIDs = append(comm.MemberIDs, int32(v))
		}
		out.Communities = append(out.Communities, comm)
	}
	return out
}
