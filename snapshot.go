package acq

import (
	"context"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"github.com/acq-search/acq/internal/dataio"
	"github.com/acq-search/acq/internal/graph"
	"github.com/acq-search/acq/internal/lru"
)

// DefaultResultCacheSize is the per-snapshot query-result cache capacity used
// when Graph.SetResultCacheSize has not been called.
const DefaultResultCacheSize = 256

// cacheStats accumulates snapshot-cache hits and misses across every
// snapshot a graph publishes (each snapshot has its own cache, but the
// counters are shared so serving metrics survive republication).
type cacheStats struct {
	hits, misses atomic.Uint64
}

// Snapshot is an immutable, point-in-time view of a Graph and its CL-tree.
//
// A snapshot is obtained from Graph.Snapshot with a single atomic pointer
// load and never changes afterwards: all its query methods are lock-free and
// safe for unlimited concurrent callers, even while the originating Graph is
// being mutated. A reader holding a snapshot observes one consistent graph
// version for as long as it keeps the reference; updates become visible only
// by acquiring a newer snapshot.
//
// Successful query results are memoised in a bounded per-snapshot LRU cache
// keyed by the normalised query, so repeated hot queries against the same
// graph version cost one cache probe. The cache is dropped wholesale with
// the snapshot, which makes stale results structurally impossible. The cache
// is the one serving structure with internal (sharded, per-probe) locking;
// disable it with Graph.SetResultCacheSize(-1) for a strictly lock-free read
// path. Results are deep-copied at the cache boundary, so callers own every
// Result they receive and may mutate it freely.
type Snapshot struct {
	v       view
	version uint64
	cache   *lru.ShardedCache[Result]
	stats   *cacheStats
}

// newSnapshot assembles a snapshot around an already-cloned view. cacheSize
// follows the SetResultCacheSize convention: 0 means the default capacity,
// negative disables result caching.
func newSnapshot(v view, version uint64, cacheSize int, stats *cacheStats) *Snapshot {
	s := &Snapshot{v: v, version: version, stats: stats}
	if cacheSize == 0 {
		cacheSize = DefaultResultCacheSize
	}
	if cacheSize > 0 {
		s.cache = lru.NewSharded[Result](cacheSize)
	}
	return s
}

// Version identifies the graph version this snapshot was published at: the
// value of Graph.Version at publication time.
func (s *Snapshot) Version() uint64 { return s.version }

// PeekSnapshot returns the most recently published snapshot without marking
// it consumed — unlike Snapshot, a peek never triggers an eager
// copy-on-write republication on the next mutation, so status probes and
// metrics scrapers can read snapshot-consistent state at any frequency
// without defeating write-burst coalescing. The returned snapshot may lag
// the master by coalesced mutations (compare Version against
// Graph.Version), and is nil before the first publication.
func (G *Graph) PeekSnapshot() *Snapshot { return G.snap.Load() }

// Search evaluates one query against the snapshot; see Graph.Search for the
// Query.Mode dispatch and the cancellation contract. Successful results are
// memoised in the snapshot's LRU cache; an already-canceled ctx returns
// ErrCanceled without touching the cache, and canceled evaluations are never
// cached.
func (s *Snapshot) Search(ctx context.Context, q Query) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Done() != nil && ctx.Err() != nil {
		return Result{}, canceledErr(ctx)
	}
	// Reject unknown modes/algorithms before the cache probe: an invalid
	// query must never alias the cache key of a valid one (a typo'd mode
	// would otherwise return a cached ModeCore result with a nil error).
	if err := validateDispatch(q); err != nil {
		return Result{}, err
	}
	return s.cached(ctx, q)
}

// Stats computes summary statistics of the snapshot.
func (s *Snapshot) Stats() Stats { return s.v.stats() }

// HasIndex reports whether the snapshot carries a CL-tree.
func (s *Snapshot) HasIndex() bool { return s.v.tree != nil }

// NumVertices returns |V|.
func (s *Snapshot) NumVertices() int { return s.v.g.NumVertices() }

// NumEdges returns |E|.
func (s *Snapshot) NumEdges() int { return s.v.g.NumEdges() }

// VertexID resolves a label.
func (s *Snapshot) VertexID(label string) (int32, bool) {
	v, ok := s.v.g.VertexByLabel(label)
	return int32(v), ok
}

// Label returns the label of a vertex ID ("" if unlabelled).
func (s *Snapshot) Label(v int32) string { return s.v.g.Label(graph.VertexID(v)) }

// Keywords returns the keyword strings of a vertex.
func (s *Snapshot) Keywords(v int32) []string {
	return s.v.g.KeywordStrings(graph.VertexID(v))
}

// CoreNumber returns the core number of a vertex (requires an index).
func (s *Snapshot) CoreNumber(v int32) (int, error) { return s.v.coreNumber(v) }

// Save writes the snapshot's graph in the text interchange format — unlike
// Graph.Save, this is safe while the originating graph is being mutated.
func (s *Snapshot) Save(w io.Writer) error { return dataio.WriteText(w, s.v.g) }

// SaveSnapshot writes the snapshot's graph and index as a binary snapshot
// file, again safe under concurrent mutation of the originating graph.
func (s *Snapshot) SaveSnapshot(w io.Writer) error {
	return dataio.WriteSnapshot(w, s.v.g, s.v.tree)
}

// cached memoises successful results of the mode dispatch in the snapshot's
// LRU cache. Errors (including cancellations) are never cached: they are
// cheap to recompute and callers expect errors.Is to keep working on fresh
// wrap chains.
//
// Results are deep-copied at the cache boundary — a clone is stored on miss
// and a clone is returned on hit — so every caller fully owns what it gets
// back (sorting or truncating a returned Result never corrupts the cache,
// and identical queries racing in one batch never share slices). A hit
// therefore costs one probe plus a copy proportional to the result size,
// still far below recomputing the search.
func (s *Snapshot) cached(ctx context.Context, q Query) (Result, error) {
	if s.cache == nil {
		return s.v.evaluate(ctx, q)
	}
	key := cacheKey(q)
	if res, ok := s.cache.Get(key); ok {
		s.stats.hits.Add(1)
		return res.clone(), nil
	}
	s.stats.misses.Add(1)
	res, err := s.v.evaluate(ctx, q)
	if err != nil {
		return res, err
	}
	s.cache.Put(key, res.clone())
	return res, nil
}

// clone deep-copies a Result so cache-resident values are never aliased by
// callers.
func (r Result) clone() Result {
	out := Result{
		LabelSize:       r.LabelSize,
		Fallback:        r.Fallback,
		ScoreLowerBound: r.ScoreLowerBound,
		ScoreUpperBound: r.ScoreUpperBound,
		Exact:           r.Exact,
		Work:            r.Work,
		BudgetExhausted: r.BudgetExhausted,
	}
	if r.Communities != nil {
		out.Communities = make([]Community, len(r.Communities))
		for i, c := range r.Communities {
			out.Communities[i] = Community{
				Label:     append([]string(nil), c.Label...),
				Members:   append([]string(nil), c.Members...),
				MemberIDs: append([]int32(nil), c.MemberIDs...),
			}
		}
	}
	return out
}

// modeKind maps a mode to the one-byte cache-key prefix. The bytes predate
// the unified Search surface (they were the per-method kinds), which keeps
// key layouts stable across the API migration.
func modeKind(m Mode) byte {
	switch m {
	case ModeFixed:
		return 'f'
	case ModeThreshold:
		return 't'
	case ModeClique:
		return 'c'
	case ModeSimilar:
		return 'j'
	case ModeTruss:
		return 'r'
	default: // "" and ModeCore share a key: they are the same query
		return 's'
	}
}

// cacheKey normalises a query into a deterministic string: equivalent
// queries (same vertex, mode, k, algorithm, flags, parameters and keyword
// multiset, in any order) map to the same key. Labels and keywords are
// quoted so arbitrary user strings cannot collide across field boundaries.
func cacheKey(q Query) string {
	param := 0.0
	switch q.Mode {
	case ModeThreshold:
		param = q.Theta
	case ModeSimilar:
		param = q.Tau
	}
	var b strings.Builder
	b.WriteByte(modeKind(q.Mode))
	b.WriteByte('|')
	if q.Vertex != "" {
		b.WriteString(strconv.Quote(q.Vertex))
	} else {
		b.WriteByte('#')
		b.WriteString(strconv.Itoa(int(q.VertexID)))
	}
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(q.K))
	b.WriteByte('|')
	algo := q.Algorithm
	if algo == "" {
		algo = AlgoDec
	}
	b.WriteString(string(algo))
	b.WriteByte('|')
	if q.DisableInvertedLists {
		b.WriteByte('I')
	}
	if q.FuzzDistance > 0 {
		b.WriteByte('z')
		b.WriteString(strconv.Itoa(q.FuzzDistance))
	}
	if q.MaxHops > 0 {
		b.WriteByte('h')
		b.WriteString(strconv.Itoa(q.MaxHops))
	}
	// The approximation knobs change the result contract, so they must be
	// part of the key — an approximate result may never alias an exact one.
	if q.Epsilon > 0 {
		b.WriteByte('e')
		b.WriteString(strconv.FormatFloat(q.Epsilon, 'g', -1, 64))
	}
	if q.Budget > 0 {
		b.WriteByte('b')
		b.WriteString(strconv.FormatInt(q.Budget, 10))
	}
	if q.TopR > 0 {
		b.WriteByte('r')
		b.WriteString(strconv.Itoa(q.TopR))
	}
	b.WriteByte('|')
	if len(q.Keywords) > 0 {
		kws := append([]string(nil), q.Keywords...)
		sort.Strings(kws)
		for i, w := range kws {
			if i > 0 && kws[i-1] == w {
				continue // deduplicate
			}
			b.WriteString(strconv.Quote(w))
		}
	}
	if param != 0 {
		b.WriteByte('|')
		b.WriteString(strconv.FormatFloat(param, 'g', -1, 64))
	}
	return b.String()
}
