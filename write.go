package acq

import (
	"errors"
	"fmt"
	"time"

	"github.com/acq-search/acq/internal/core"
	"github.com/acq-search/acq/internal/graph"
	"github.com/acq-search/acq/internal/wal"
)

// This file implements the LSM-style write path: once a graph is serving,
// effective mutations publish a small graph.Overlay over an immutable frozen
// base (O(delta) per publication) instead of re-freezing the whole graph, and
// a background compactor folds the overlay into a fresh base off the serving
// path. See the "Write path" section of the README for the model.

// ErrBadMutation reports an ApplyMutations op with an unknown Op value.
var ErrBadMutation = errors.New("acq: unknown mutation op")

// DefaultCompactionThreshold is the number of effective mutations folded into
// the overlay before a background compaction is scheduled, when
// SetCompactionThreshold has not been called.
const DefaultCompactionThreshold = 4096

// MutationOp names one mutation kind in a batch.
type MutationOp string

// The mutation kinds accepted by ApplyMutations. They mirror the four
// single-op mutators.
const (
	OpInsertEdge    MutationOp = "insert_edge"
	OpRemoveEdge    MutationOp = "remove_edge"
	OpAddKeyword    MutationOp = "add_keyword"
	OpRemoveKeyword MutationOp = "remove_keyword"
)

// Mutation is one entry of an ApplyMutations batch. Edge ops use U and V;
// keyword ops use Vertex and Keyword.
type Mutation struct {
	Op      MutationOp
	U, V    int32
	Vertex  int32
	Keyword string
}

// MutationResult reports the outcome of one batch entry: whether it changed
// the graph, or why it was rejected. Rejected entries never abort the batch.
type MutationResult struct {
	Changed bool
	Err     error
}

// ApplyMutations applies a batch of mutations atomically with respect to
// readers: the whole batch runs under one writer-lock acquisition and
// triggers at most one snapshot publication, so ingest amortises the
// per-publication cost over the batch size. Entries are applied in order;
// invalid entries (unknown op, out-of-range vertex) are reported in their
// MutationResult and skipped. The graph version advances once per entry that
// changed the graph.
func (G *Graph) ApplyMutations(ops []Mutation) []MutationResult {
	out := make([]MutationResult, len(ops))
	G.mu.Lock()
	defer G.mu.Unlock()
	G.ensureMasterLocked()
	n := int32(G.g.NumVertices())
	v0 := G.version.Load()
	var logOps []wal.Op // effective ops for the WAL, in application order
	logging := G.dur != nil && G.dur.log != nil
	effective := 0
	for i, op := range ops {
		switch op.Op {
		case OpInsertEdge, OpRemoveEdge:
			if op.U < 0 || op.U >= n || op.V < 0 || op.V >= n {
				out[i].Err = ErrVertexNotFound
				continue
			}
		case OpAddKeyword, OpRemoveKeyword:
			if op.Vertex < 0 || op.Vertex >= n {
				out[i].Err = ErrVertexNotFound
				continue
			}
		default:
			out[i].Err = fmt.Errorf("%w: %q", ErrBadMutation, op.Op)
			continue
		}
		var changed bool
		switch op.Op {
		case OpInsertEdge:
			changed = G.applyInsertEdgeLocked(graph.VertexID(op.U), graph.VertexID(op.V))
		case OpRemoveEdge:
			changed = G.applyRemoveEdgeLocked(graph.VertexID(op.U), graph.VertexID(op.V))
		case OpAddKeyword:
			changed = G.applyAddKeywordLocked(graph.VertexID(op.Vertex), op.Keyword)
		case OpRemoveKeyword:
			changed = G.applyRemoveKeywordLocked(graph.VertexID(op.Vertex), op.Keyword)
		}
		out[i].Changed = changed
		if changed {
			G.version.Add(1)
			effective++
			if logging {
				logOps = append(logOps, walOpOfMutation(op))
			}
		}
	}
	if effective > 0 {
		// The WAL record lands before the batch publishes or the caller is
		// acknowledged: a snapshot never exposes state that a crash could
		// take back.
		G.durAppendLocked(v0, logOps)
		G.afterWriteLocked()
	}
	return out
}

// --- raw apply helpers. Each applies one mutation to the master (through the
// maintainer when an index exists) and records the dirtied rows; version
// bumps and publication are the caller's job.

func (G *Graph) applyInsertEdgeLocked(u, v graph.VertexID) bool {
	var changed bool
	if G.maint != nil {
		changed = G.maint.InsertEdge(u, v)
	} else {
		changed = G.g.InsertEdge(u, v)
	}
	if changed {
		G.noteEdgeLocked(u, v)
	}
	return changed
}

func (G *Graph) applyRemoveEdgeLocked(u, v graph.VertexID) bool {
	var changed bool
	if G.maint != nil {
		changed = G.maint.RemoveEdge(u, v)
	} else {
		changed = G.g.RemoveEdge(u, v)
	}
	if changed {
		G.noteEdgeLocked(u, v)
	}
	return changed
}

func (G *Graph) applyAddKeywordLocked(v graph.VertexID, word string) bool {
	var changed bool
	if G.maint != nil {
		changed = G.maint.AddKeyword(v, word)
	} else {
		changed = G.g.AddKeyword(v, word)
	}
	if changed {
		G.noteKeywordLocked(v, 1)
	}
	return changed
}

func (G *Graph) applyRemoveKeywordLocked(v graph.VertexID, word string) bool {
	var changed bool
	if G.maint != nil {
		changed = G.maint.RemoveKeyword(v, word)
	} else {
		changed = G.g.RemoveKeyword(v, word)
	}
	if changed {
		G.noteKeywordLocked(v, -1)
	}
	return changed
}

// --- overlay tracking. Active exactly while G.base != nil: every dirtied
// vertex gets its master row copied into the override tables, so building a
// publishable Overlay is two index-array copies plus slice-header copies.

// pendingDelta records the rows dirtied while a compaction is materialising
// off-lock, so the new working overlay can be rebuilt relative to the
// compacted base without losing the writes that landed mid-compaction.
type pendingDelta struct {
	adj, kw             map[graph.VertexID]struct{}
	ops, edgeOps, kwOps int
}

func newPendingDelta() *pendingDelta {
	return &pendingDelta{adj: map[graph.VertexID]struct{}{}, kw: map[graph.VertexID]struct{}{}}
}

func (G *Graph) noteEdgeLocked(u, v graph.VertexID) {
	if G.base == nil {
		return
	}
	G.setAdjRowLocked(u)
	G.setAdjRowLocked(v)
	G.deltaOps.Add(1)
	G.deltaEdgeOps.Add(1)
	G.syncDeltaBytesLocked()
	if G.pend != nil {
		G.pend.adj[u] = struct{}{}
		G.pend.adj[v] = struct{}{}
		G.pend.ops++
		G.pend.edgeOps++
	}
}

func (G *Graph) noteKeywordLocked(v graph.VertexID, delta int) {
	if G.base == nil {
		return
	}
	G.setKwRowLocked(v)
	G.ovKwTotal += delta
	G.deltaOps.Add(1)
	G.deltaKwOps.Add(1)
	G.syncDeltaBytesLocked()
	if G.tree != nil && G.patchDirty != nil {
		G.patchDirty[v] = struct{}{}
	}
	if G.pend != nil {
		G.pend.kw[v] = struct{}{}
		G.pend.ops++
		G.pend.kwOps++
	}
}

// setAdjRowLocked (re)copies v's master adjacency row into the override
// table. Rows are replaced wholesale — published overlays share the old row
// slices, which therefore must never be spliced in place.
func (G *Graph) setAdjRowLocked(v graph.VertexID) {
	row := append([]graph.VertexID(nil), G.g.Neighbors(v)...)
	if i := G.ovAdjIdx[v]; i >= 0 {
		G.ovAdjLen += len(row) - len(G.ovAdjRows[i])
		G.ovAdjRows[i] = row
		return
	}
	G.ovAdjIdx[v] = int32(len(G.ovAdjRows))
	G.ovAdjRows = append(G.ovAdjRows, row)
	G.ovAdjLen += len(row)
	G.deltaAdjRows.Add(1)
}

func (G *Graph) setKwRowLocked(v graph.VertexID) {
	row := append([]graph.KeywordID(nil), G.g.Keywords(v)...)
	if i := G.ovKwIdx[v]; i >= 0 {
		G.ovKwLen += len(row) - len(G.ovKwRows[i])
		G.ovKwRows[i] = row
		return
	}
	G.ovKwIdx[v] = int32(len(G.ovKwRows))
	G.ovKwRows = append(G.ovKwRows, row)
	G.ovKwLen += len(row)
	G.deltaKwRows.Add(1)
}

// syncDeltaBytesLocked mirrors the overlay's override-row payload size into
// the lock-free telemetry counter (4 bytes per int32 entry).
func (G *Graph) syncDeltaBytesLocked() {
	G.deltaBytes.Store(4 * int64(G.ovAdjLen+G.ovKwLen))
}

// resetDeltaLocked (re)initialises overlay tracking relative to the freshly
// frozen base fz, with t2 (the tree clone just published, may be nil) as the
// reusable publication tree.
func (G *Graph) resetDeltaLocked(fz *graph.Frozen, t2 *core.Tree) {
	// Counts come from fz, not the master: at every reset point the base is
	// an exact freeze of the current state, and on a mapped boot the master
	// does not exist yet.
	n := fz.NumVertices()
	G.base = fz
	G.ovAdjIdx = fillNegOne(G.ovAdjIdx, n)
	G.ovKwIdx = fillNegOne(G.ovKwIdx, n)
	G.ovAdjRows, G.ovKwRows = nil, nil
	G.ovAdjLen, G.ovKwLen = 0, 0
	G.ovDict, G.ovDictSize = nil, 0
	total := 0
	for v := 0; v < n; v++ {
		total += len(fz.Keywords(graph.VertexID(v)))
	}
	G.ovKwTotal = total
	G.deltaOps.Store(0)
	G.deltaEdgeOps.Store(0)
	G.deltaKwOps.Store(0)
	G.deltaAdjRows.Store(0)
	G.deltaKwRows.Store(0)
	G.deltaBytes.Store(0)
	G.pubTree = t2
	if G.maint != nil {
		G.pubStructRev = G.maint.StructRev()
	}
	G.workingPatch = map[*core.Node]*core.NodePostings{}
	G.patchDirty = map[graph.VertexID]struct{}{}
}

// dropDeltaLocked turns overlay tracking off entirely; the next publication
// will be a full freeze (and will re-initialise tracking if the compaction
// threshold allows it). An in-flight compaction notices the dropped base at
// install time and discards its work.
func (G *Graph) dropDeltaLocked() {
	G.base = nil
	G.ovAdjIdx, G.ovKwIdx = nil, nil
	G.ovAdjRows, G.ovKwRows = nil, nil
	G.ovAdjLen, G.ovKwLen = 0, 0
	G.ovDict, G.ovDictSize = nil, 0
	G.ovKwTotal = 0
	G.deltaOps.Store(0)
	G.deltaEdgeOps.Store(0)
	G.deltaKwOps.Store(0)
	G.deltaAdjRows.Store(0)
	G.deltaKwRows.Store(0)
	G.deltaBytes.Store(0)
	G.pubTree = nil
	G.workingPatch = nil
	G.patchDirty = nil
	G.pend = nil
}

func fillNegOne(s []int32, n int) []int32 {
	if len(s) != n {
		s = make([]int32, n)
	}
	for i := range s {
		s[i] = -1
	}
	return s
}

// overlayLocked publishes the current working delta as an immutable Overlay:
// index arrays are copied, row storage and the base are shared, and the
// dictionary is the base's unless the master interned new words since the
// base was frozen (then a clone is cached per dictionary size, so a burst of
// publications between interns clones once).
func (G *Graph) overlayLocked() *graph.Overlay {
	var dict *graph.Dict
	if sz := G.g.Dict().Size(); sz != G.base.Dict().Size() {
		if G.ovDict == nil || G.ovDictSize != sz {
			G.ovDict = G.g.Dict().Clone()
			G.ovDictSize = sz
		}
		dict = G.ovDict
	}
	return graph.NewOverlay(G.base,
		append([]int32(nil), G.ovAdjIdx...), append([][]graph.VertexID(nil), G.ovAdjRows...),
		append([]int32(nil), G.ovKwIdx...), append([][]graph.KeywordID(nil), G.ovKwRows...),
		dict, G.g.NumEdges(), G.ovKwTotal)
}

// deltaTreeLocked produces the tree for a delta publication bound to ov.
//
// While the tree's structure is unchanged since the last full clone
// (Maintainer.StructRev holds still — keyword splices and intra-node edge
// inserts), the published tree is a shallow rebind of that clone plus a
// posting patch: for every vertex whose keywords changed, the owning node's
// already-spliced postings are copied from the master tree (three flat-array
// copies). That keeps keyword-churn publications at microseconds instead of
// the O(tree) deep clone. After a structural repair, one full clone is paid
// and becomes the new rebind source.
func (G *Graph) deltaTreeLocked(ov *graph.Overlay) *core.Tree {
	if G.tree == nil {
		return nil
	}
	rev := G.maint.StructRev()
	if G.pubTree == nil || G.pubStructRev != rev {
		workers := core.BuildOptions{Workers: G.buildWorkers}.ResolvedWorkers(G.g)
		t2 := G.tree.CloneOpts(ov, core.BuildOptions{Workers: workers})
		G.pubTree = t2
		G.pubStructRev = rev
		G.workingPatch = map[*core.Node]*core.NodePostings{}
		G.patchDirty = map[graph.VertexID]struct{}{}
		return t2
	}
	if len(G.patchDirty) > 0 {
		for v := range G.patchDirty {
			G.workingPatch[G.pubTree.NodeOf[v]] = core.CopyNodePostings(G.tree.NodeOf[v])
		}
		G.patchDirty = map[graph.VertexID]struct{}{}
	}
	if len(G.workingPatch) == 0 {
		return G.pubTree.RebindPostings(ov, nil)
	}
	patch := make(map[*core.Node]*core.NodePostings, len(G.workingPatch))
	for nd, p := range G.workingPatch {
		patch[nd] = p
	}
	return G.pubTree.RebindPostings(ov, patch)
}

// --- compaction.

// thresholdOf resolves the raw SetCompactionThreshold value.
func thresholdOf(raw int64) int {
	if raw == 0 {
		return DefaultCompactionThreshold
	}
	return int(raw)
}

// SetCompactionThreshold configures when the background compactor folds the
// overlay into a new frozen base: after n effective mutations (0 restores
// DefaultCompactionThreshold). A negative n disables the overlay write path
// entirely — every effective mutation republishes a full frozen snapshot,
// the pre-overlay behaviour — which exists for benchmarking and as an
// escape hatch. The setting takes effect at the next publication.
func (G *Graph) SetCompactionThreshold(n int) {
	G.mu.Lock()
	defer G.mu.Unlock()
	G.compactThreshold.Store(int64(n))
	G.dropDeltaLocked()
}

// maybeCompactLocked schedules a background compaction once the overlay has
// absorbed a threshold's worth of effective mutations. Callers hold G.mu;
// the compaction itself runs off-lock on its own goroutine.
func (G *Graph) maybeCompactLocked() {
	raw := G.compactThreshold.Load()
	if G.base == nil || G.pend != nil || raw < 0 {
		return
	}
	if int(G.deltaOps.Load()) < thresholdOf(raw) {
		return
	}
	if !G.compactArmed.CompareAndSwap(false, true) {
		return
	}
	go func() {
		G.compactMu.Lock()
		defer G.compactMu.Unlock()
		G.compactArmed.Store(false)
		G.compactOnce()
	}()
}

// Compact synchronously folds the current overlay into a new frozen base,
// waiting for any in-flight background compaction first. It is a no-op when
// the overlay is empty or the graph is not tracking deltas. Mutators and
// readers keep running while the fold materialises; the writer lock is held
// only to capture the overlay and to install the result.
func (G *Graph) Compact() {
	G.compactMu.Lock()
	defer G.compactMu.Unlock()
	G.compactOnce()
}

// compactOnce is the compaction body; callers hold G.compactMu (never G.mu).
//
// Capture (under mu): an immutable overlay of the current graph, the current
// rebind tree plus a patch folding every pending keyword change, and the
// version/revision fingerprints. Fold (off-lock): Overlay.Materialize builds
// the new CSR base and the patched tree is deep-cloned against it, so the
// O(n+m) work never blocks writers. Install (under mu): the working overlay
// is rebuilt relative to the new base from the rows dirtied mid-compaction,
// and if nothing changed at all the compacted snapshot replaces the overlay
// snapshot directly.
func (G *Graph) compactOnce() {
	start := time.Now()
	G.mu.Lock()
	if G.base == nil || G.deltaOps.Load() == 0 {
		G.mu.Unlock()
		return
	}
	base0 := G.base
	ov := G.overlayLocked()
	var treeSrc *core.Tree
	var patch0 map[*core.Node]*core.NodePostings
	var rev0 uint64
	gen0 := G.treeGen
	if G.tree != nil && G.pubTree != nil && G.maint.StructRev() == G.pubStructRev {
		rev0 = G.pubStructRev
		treeSrc = G.pubTree
		patch0 = make(map[*core.Node]*core.NodePostings, len(G.workingPatch)+len(G.patchDirty))
		for nd, p := range G.workingPatch {
			patch0[nd] = p
		}
		// Fold in keyword changes that have not been published yet; patchDirty
		// is deliberately left as is — the next publication still needs it.
		for v := range G.patchDirty {
			patch0[G.pubTree.NodeOf[v]] = core.CopyNodePostings(G.tree.NodeOf[v])
		}
	}
	v0 := G.version.Load()
	workers := core.BuildOptions{Workers: G.buildWorkers}.ResolvedWorkers(G.g)
	G.pend = newPendingDelta()
	G.compacting.Store(true)
	G.mu.Unlock()

	fz := ov.Materialize(workers)
	var folded *core.Tree
	if treeSrc != nil {
		folded = treeSrc.RebindPostings(fz, patch0).CloneOpts(fz, core.BuildOptions{Workers: workers})
	}

	G.mu.Lock()
	G.installCompactedLocked(base0, fz, folded, rev0, gen0, v0)
	G.compacting.Store(false)
	G.compactions.Add(1)
	G.lastCompactionNanos.Store(time.Since(start).Nanoseconds())
	G.mu.Unlock()
}

// installCompactedLocked swaps the compacted base in and rebuilds the working
// overlay from the rows dirtied while the fold ran. Callers hold G.mu.
func (G *Graph) installCompactedLocked(base0, fz *graph.Frozen, folded *core.Tree, rev0, gen0, v0 uint64) {
	pend := G.pend
	G.pend = nil
	if pend == nil || G.base != base0 {
		// EndServing or SetCompactionThreshold reset tracking mid-fold; the
		// captured state no longer describes anything current.
		return
	}
	n := G.g.NumVertices()
	G.base = fz
	G.ovAdjIdx = fillNegOne(G.ovAdjIdx, n)
	G.ovKwIdx = fillNegOne(G.ovKwIdx, n)
	G.ovAdjRows, G.ovKwRows = nil, nil
	G.ovAdjLen, G.ovKwLen = 0, 0
	G.ovDict, G.ovDictSize = nil, 0
	G.deltaAdjRows.Store(0)
	G.deltaKwRows.Store(0)
	for v := range pend.adj {
		G.setAdjRowLocked(v)
	}
	for v := range pend.kw {
		G.setKwRowLocked(v)
	}
	G.deltaOps.Store(int64(pend.ops))
	G.deltaEdgeOps.Store(int64(pend.edgeOps))
	G.deltaKwOps.Store(int64(pend.kwOps))
	G.syncDeltaBytesLocked()

	if folded != nil && G.treeGen == gen0 && G.maint.StructRev() == rev0 {
		// Structure still matches the folded clone: it becomes the new rebind
		// source. Keyword changes that landed mid-fold are re-dirtied so the
		// next publication recomputes their patches against the new clone.
		G.pubTree = folded
		G.pubStructRev = rev0
		G.workingPatch = map[*core.Node]*core.NodePostings{}
		G.patchDirty = map[graph.VertexID]struct{}{}
		for v := range pend.kw {
			G.patchDirty[v] = struct{}{}
		}
	} else if G.tree != nil {
		// The tree changed structurally mid-fold (or carried no reusable
		// clone): the next publication pays one full clone.
		G.pubTree = nil
		G.workingPatch = map[*core.Node]*core.NodePostings{}
		G.patchDirty = map[graph.VertexID]struct{}{}
	}

	// Republish over the new base so the served snapshot stops pinning the
	// old one. With no mutations since capture this publishes an empty delta.
	if G.snap.Load() != nil && G.version.Load() == v0 {
		G.publishLocked()
	}
}

// --- write-path telemetry.

// WriteStats reports the state of the LSM-style write path. Lock-free: safe
// to poll from metrics scrapers and health probes while writers publish.
type WriteStats struct {
	// DeltaOps counts the effective mutations folded into the current
	// overlay (since the last full publication or compaction).
	DeltaOps int
	// DeltaEdges / DeltaKeywords split DeltaOps by mutation kind.
	DeltaEdges    int
	DeltaKeywords int
	// DeltaAdjRows / DeltaKeywordRows count the per-vertex rows the overlay
	// overrides; DeltaBytes is their resident payload size in bytes.
	DeltaAdjRows     int
	DeltaKeywordRows int
	DeltaBytes       int
	// CompactionThreshold is the resolved trigger (negative when the overlay
	// write path is disabled and every mutation republishes in full).
	CompactionThreshold int
	// CompactionInProgress reports an in-flight background fold.
	CompactionInProgress bool
	// Compactions counts completed folds; LastCompaction is the wall-clock
	// duration of the most recent one.
	Compactions    uint64
	LastCompaction time.Duration
	// FullPublishes / DeltaPublishes count snapshot publications by kind.
	FullPublishes  uint64
	DeltaPublishes uint64
}

// WriteStats returns the current write-path telemetry.
func (G *Graph) WriteStats() WriteStats {
	raw := G.compactThreshold.Load()
	threshold := thresholdOf(raw)
	if raw < 0 {
		threshold = int(raw)
	}
	return WriteStats{
		DeltaOps:             int(G.deltaOps.Load()),
		DeltaEdges:           int(G.deltaEdgeOps.Load()),
		DeltaKeywords:        int(G.deltaKwOps.Load()),
		DeltaAdjRows:         int(G.deltaAdjRows.Load()),
		DeltaKeywordRows:     int(G.deltaKwRows.Load()),
		DeltaBytes:           int(G.deltaBytes.Load()),
		CompactionThreshold:  threshold,
		CompactionInProgress: G.compacting.Load(),
		Compactions:          G.compactions.Load(),
		LastCompaction:       time.Duration(G.lastCompactionNanos.Load()),
		FullPublishes:        G.fullPublishes.Load(),
		DeltaPublishes:       G.deltaPublishes.Load(),
	}
}
