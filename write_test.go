package acq_test

// Differential acceptance tests for the LSM-style write path: serving reads
// through a delta overlay must be byte-identical to a compact-then-query
// baseline for every query mode at workers 1, 2 and 8, including reads that
// overlap a background compaction. The baseline graph runs with
// SetCompactionThreshold(-1) — the legacy republish-per-write path, which
// freezes the full graph on every effective mutation — so the two paths share
// no publication machinery beyond the master itself.

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	acq "github.com/acq-search/acq"
)

// writeStream generates a deterministic mixed mutation stream: keyword churn
// (including brand-new words, exercising the dictionary-clone path), edge
// inserts and removes (exercising tree-structure repairs and the intra-node
// fast path), and removals of previously inserted edges.
func writeStream(seed int64, n int, steps int) []acq.Mutation {
	rng := rand.New(rand.NewSource(seed))
	var ops []acq.Mutation
	var inserted [][2]int32
	for i := 0; i < steps; i++ {
		v := int32(rng.Intn(n))
		switch r := rng.Intn(10); {
		case r < 4:
			ops = append(ops, acq.Mutation{Op: acq.OpAddKeyword, Vertex: v,
				Keyword: fmt.Sprintf("delta-kw-%d", rng.Intn(9))})
		case r < 6:
			ops = append(ops, acq.Mutation{Op: acq.OpRemoveKeyword, Vertex: v,
				Keyword: fmt.Sprintf("delta-kw-%d", rng.Intn(9))})
		case r < 8:
			u := int32(rng.Intn(n))
			ops = append(ops, acq.Mutation{Op: acq.OpInsertEdge, U: u, V: v})
			inserted = append(inserted, [2]int32{u, v})
		default:
			if len(inserted) > 0 && rng.Intn(2) == 0 {
				e := inserted[rng.Intn(len(inserted))]
				ops = append(ops, acq.Mutation{Op: acq.OpRemoveEdge, U: e[0], V: e[1]})
			} else {
				u := int32(rng.Intn(n))
				ops = append(ops, acq.Mutation{Op: acq.OpRemoveEdge, U: u, V: v})
			}
		}
	}
	return ops
}

// applyStream feeds the stream to a serving graph, alternating between
// single-op mutators (with interleaved Snapshot acquisitions so publications
// are eager, not coalesced) and ApplyMutations batches.
func applyStream(g *acq.Graph, ops []acq.Mutation) {
	i := 0
	for i < len(ops) {
		if i%3 == 0 {
			end := i + 7
			if end > len(ops) {
				end = len(ops)
			}
			g.ApplyMutations(ops[i:end])
			i = end
		} else {
			op := ops[i]
			switch op.Op {
			case acq.OpInsertEdge:
				g.InsertEdge(op.U, op.V)
			case acq.OpRemoveEdge:
				g.RemoveEdge(op.U, op.V)
			case acq.OpAddKeyword:
				g.AddKeyword(op.Vertex, op.Keyword)
			case acq.OpRemoveKeyword:
				g.RemoveKeyword(op.Vertex, op.Keyword)
			}
			i++
		}
		g.Snapshot() // consume so the next effective mutation publishes
	}
}

// servingGraph builds an indexed, cache-disabled serving graph of the dblp
// preset at the given worker count.
func servingGraph(t *testing.T, workers int) *acq.Graph {
	t.Helper()
	g, err := acq.Synthetic("dblp", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	g.SetResultCacheSize(-1)
	g.SetBuildWorkers(workers)
	g.BuildIndexOpts(acq.BuildOptions{Workers: workers})
	g.Snapshot()
	return g
}

// requireSameAnswers compares every mode/algorithm answer of two snapshots.
func requireSameAnswers(t *testing.T, label string, queries []int32, kwOf func(int32) []string, a, b *acq.Snapshot) {
	t.Helper()
	for _, qv := range queries {
		for _, q := range diffQueries(qv, kwOf(qv)) {
			ra, errA := a.Search(bgCtx, q)
			rb, errB := b.Search(bgCtx, q)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("%s: q=%d mode=%s algo=%s: error mismatch %v vs %v", label, qv, q.Mode, q.Algorithm, errA, errB)
			}
			if errA != nil {
				continue
			}
			if !reflect.DeepEqual(ra, rb) {
				t.Fatalf("%s: q=%d mode=%s algo=%s: answers diverged:\n%+v\nvs\n%+v", label, qv, q.Mode, q.Algorithm, ra, rb)
			}
		}
	}
}

// TestOverlayVsCompactedAllModes: after an identical mutation stream, the
// delta-overlay snapshot, the post-compaction snapshot and the
// republish-per-write baseline snapshot answer every query mode identically
// at workers 1, 2 and 8.
func TestOverlayVsCompactedAllModes(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			delta := servingGraph(t, workers)
			baseline := servingGraph(t, workers)
			baseline.SetCompactionThreshold(-1)

			ops := writeStream(42, delta.NumVertices(), 300)
			applyStream(delta, ops)
			applyStream(baseline, ops)

			ws := delta.WriteStats()
			if ws.DeltaPublishes == 0 {
				t.Fatal("delta graph never published an overlay snapshot")
			}
			if bs := baseline.WriteStats(); bs.DeltaPublishes != 0 {
				t.Fatalf("baseline published %d overlay snapshots; want 0", bs.DeltaPublishes)
			}
			if delta.Version() != baseline.Version() {
				t.Fatalf("streams diverged: version %d vs %d", delta.Version(), baseline.Version())
			}

			var queries []int32
			for v := int32(0); int(v) < delta.NumVertices() && len(queries) < 4; v++ {
				if c, _ := delta.CoreNumber(v); c >= 4 {
					queries = append(queries, v)
				}
			}
			if len(queries) == 0 {
				t.Fatal("no queryable vertices")
			}

			ovSnap := delta.Snapshot()
			base := baseline.Snapshot()
			requireSameAnswers(t, "overlay-vs-baseline", queries, delta.Keywords, ovSnap, base)

			// Fold the overlay into a new frozen base and compare again; the
			// pinned overlay snapshot must also keep answering identically.
			delta.Compact()
			if got := delta.WriteStats(); got.Compactions == 0 {
				t.Fatal("Compact did not run")
			} else if got.DeltaOps != 0 {
				t.Fatalf("compaction left %d delta ops", got.DeltaOps)
			}
			compacted := delta.Snapshot()
			if compacted.Version() != ovSnap.Version() {
				t.Fatalf("compaction changed the version: %d vs %d", compacted.Version(), ovSnap.Version())
			}
			requireSameAnswers(t, "compacted-vs-baseline", queries, delta.Keywords, compacted, base)
			requireSameAnswers(t, "pinned-overlay-vs-compacted", queries, delta.Keywords, ovSnap, compacted)

			// And the write path keeps working after the fold.
			tail := writeStream(43, delta.NumVertices(), 60)
			applyStream(delta, tail)
			applyStream(baseline, tail)
			requireSameAnswers(t, "post-compaction-tail", queries, delta.Keywords, delta.Snapshot(), baseline.Snapshot())
		})
	}
}

// TestMidCompactionReads hammers the write path with a small compaction
// threshold while concurrent readers pin snapshots and verify that repeated
// searches against one snapshot are self-consistent. Run under -race this is
// the mid-compaction safety proof: capture, fold and install all overlap
// concurrent reads.
func TestMidCompactionReads(t *testing.T) {
	g := servingGraph(t, 2)
	g.SetCompactionThreshold(24)
	ops := writeStream(7, g.NumVertices(), 600)

	var qv int32 = -1
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		if c, _ := g.CoreNumber(v); c >= 3 {
			qv = v
			break
		}
	}
	if qv < 0 {
		t.Fatal("no queryable vertex")
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			q := acq.Query{VertexID: qv, K: 2 + r%2, Mode: acq.ModeCore}
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := g.Snapshot()
				r1, err1 := s.Search(bgCtx, q)
				r2, err2 := s.Search(bgCtx, q)
				if (err1 == nil) != (err2 == nil) || (err1 == nil && !reflect.DeepEqual(r1, r2)) {
					t.Errorf("snapshot v%d not self-consistent: %v/%v", s.Version(), err1, err2)
					return
				}
				s.Stats()
			}
		}(r)
	}
	applyStream(g, ops)
	close(stop)
	wg.Wait()
	g.Compact() // drain any in-flight background fold
	if ws := g.WriteStats(); ws.Compactions == 0 {
		t.Fatalf("no compaction ran over %d mutations at threshold 24", len(ops))
	}
}

// TestAutoCompactionTriggers: crossing the threshold schedules a background
// fold without any explicit Compact call.
func TestAutoCompactionTriggers(t *testing.T) {
	g := servingGraph(t, 1)
	g.SetCompactionThreshold(10)
	for i := 0; i < 40; i++ {
		g.AddKeyword(int32(i%g.NumVertices()), fmt.Sprintf("auto-kw-%d", i))
		g.Snapshot()
	}
	deadline := time.Now().Add(5 * time.Second)
	for g.WriteStats().Compactions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background compaction never ran")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestApplyMutationsSemantics pins the batch contract: per-entry outcomes,
// one version bump per effective entry, invalid entries reported in place,
// and at most one publication per batch.
func TestApplyMutationsSemantics(t *testing.T) {
	g := servingGraph(t, 1)
	v0 := g.Version()
	p0 := g.WriteStats().FullPublishes + g.WriteStats().DeltaPublishes

	res := g.ApplyMutations([]acq.Mutation{
		{Op: acq.OpInsertEdge, U: 0, V: 1},                        // effective unless preset edge
		{Op: acq.OpAddKeyword, Vertex: 2, Keyword: "batch-kw"},    // effective
		{Op: acq.OpAddKeyword, Vertex: 2, Keyword: "batch-kw"},    // duplicate: no-op
		{Op: acq.OpRemoveEdge, U: 0, V: int32(g.NumVertices())},   // out of range
		{Op: "frobnicate", Vertex: 1},                             // unknown op
		{Op: acq.OpRemoveKeyword, Vertex: 2, Keyword: "batch-kw"}, // effective
	})
	if len(res) != 6 {
		t.Fatalf("got %d results", len(res))
	}
	if !res[1].Changed || res[1].Err != nil {
		t.Fatalf("add: %+v", res[1])
	}
	if res[2].Changed || res[2].Err != nil {
		t.Fatalf("duplicate add: %+v", res[2])
	}
	if !errors.Is(res[3].Err, acq.ErrVertexNotFound) {
		t.Fatalf("out-of-range: %+v", res[3])
	}
	if !errors.Is(res[4].Err, acq.ErrBadMutation) {
		t.Fatalf("unknown op: %+v", res[4])
	}
	if !res[5].Changed || res[5].Err != nil {
		t.Fatalf("remove keyword: %+v", res[5])
	}
	effective := 0
	for _, r := range res {
		if r.Changed {
			effective++
		}
	}
	if got := g.Version() - v0; got != uint64(effective) {
		t.Fatalf("version advanced by %d for %d effective entries", got, effective)
	}
	ws := g.WriteStats()
	if pubs := ws.FullPublishes + ws.DeltaPublishes - p0; pubs != 1 {
		t.Fatalf("batch triggered %d publications; want 1", pubs)
	}
	if snap := g.PeekSnapshot(); snap.Version() != g.Version() {
		t.Fatalf("batch publication lagging: snapshot v%d, graph v%d", snap.Version(), g.Version())
	}
}

// TestLegacyRepublishMode: SetCompactionThreshold(-1) restores the
// freeze-per-mutation behaviour, and switching back re-enables the overlay
// at the next publication.
func TestLegacyRepublishMode(t *testing.T) {
	g := servingGraph(t, 1)
	g.SetCompactionThreshold(-1)
	g.Snapshot()
	f0 := g.WriteStats().FullPublishes
	for i := 0; i < 5; i++ {
		g.AddKeyword(0, fmt.Sprintf("legacy-%d", i))
		g.Snapshot()
	}
	ws := g.WriteStats()
	if ws.FullPublishes-f0 != 5 || ws.DeltaPublishes != 0 {
		t.Fatalf("legacy mode published full=%d delta=%d; want 5/0", ws.FullPublishes-f0, ws.DeltaPublishes)
	}
	if ws.CompactionThreshold >= 0 {
		t.Fatalf("legacy mode reports threshold %d", ws.CompactionThreshold)
	}

	g.SetCompactionThreshold(0)
	g.AddKeyword(0, "back-to-delta-seed")
	g.Snapshot() // full publish: re-initialises tracking
	g.AddKeyword(0, "back-to-delta")
	g.Snapshot()
	if ws := g.WriteStats(); ws.DeltaPublishes == 0 {
		t.Fatal("overlay publication did not resume after re-enabling")
	}
}

// TestEndServingDropsOverlay: leaving serving mode releases the overlay
// tracking state, and mutations afterwards cost no delta bookkeeping.
func TestEndServingDropsOverlay(t *testing.T) {
	g := servingGraph(t, 1)
	g.AddKeyword(0, "pre-end")
	g.Snapshot()
	g.EndServing()
	if ws := g.WriteStats(); ws.DeltaOps != 0 || ws.DeltaBytes != 0 {
		t.Fatalf("EndServing left delta state: %+v", ws)
	}
	g.AddKeyword(0, "while-idle")
	if ws := g.WriteStats(); ws.DeltaOps != 0 {
		t.Fatal("idle mutation was tracked")
	}
	// Re-entering serving mode full-publishes and resumes delta tracking.
	g.Snapshot()
	g.AddKeyword(0, "back-serving")
	g.Snapshot()
	if ws := g.WriteStats(); ws.DeltaOps != 1 || ws.DeltaPublishes == 0 {
		t.Fatalf("tracking did not resume: %+v", ws)
	}
}
